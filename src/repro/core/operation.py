"""Operations: series of pFSMs applied to one object.

Observation 2: "Multiple activities performed on the same object form an
operation, which is modeled as a FSM consisting of multiple pFSMs in
series."  The object flows through the pFSMs in order; each pFSM may
transform it (e.g. activity 1 of Figure 3 converts the strings
``str_x``/``str_i`` into the integers ``x``/``i``).  The operation is
*exploited* when a malicious object reaches the final accept state —
which requires riding a hidden path somewhere — and *foiled* the moment
any pFSM's IMPL_REJ fires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, List, Optional, Sequence, Tuple

from .pfsm import PfsmOutcome, PrimitiveFSM

__all__ = ["Operation", "OperationResult"]


@dataclass(frozen=True)
class OperationResult:
    """Outcome of pushing one object through an operation."""

    operation_name: str
    completed: bool
    outcomes: Tuple[PfsmOutcome, ...]
    final_object: Any
    foiled_by: Optional[str] = None

    @property
    def used_hidden_path(self) -> bool:
        """Did the object ride any dotted transition?"""
        return any(outcome.via_hidden_path for outcome in self.outcomes)

    @property
    def hidden_steps(self) -> List[PfsmOutcome]:
        """The outcomes that took the hidden path."""
        return [o for o in self.outcomes if o.via_hidden_path]

    @property
    def exploited(self) -> bool:
        """Completed *via* at least one hidden path — a malicious object
        got through a check that should have stopped it."""
        return self.completed and self.used_hidden_path


@dataclass(frozen=True)
class Operation:
    """A named series of pFSMs over one object.

    Parameters
    ----------
    name:
        e.g. ``"Write debug level i to tTvect[x]"`` (Figure 3 Op. 1).
    object_description:
        The object manipulated, e.g. ``"the input integer"``.
    pfsms:
        The constituent primitive FSMs, in activity order.
    """

    name: str
    object_description: str
    pfsms: Tuple[PrimitiveFSM, ...]

    def __init__(
        self,
        name: str,
        object_description: str,
        pfsms: Sequence[PrimitiveFSM],
    ) -> None:
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "object_description", object_description)
        object.__setattr__(self, "pfsms", tuple(pfsms))
        names = [p.name for p in self.pfsms]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate pFSM names in operation {name!r}: {names}")

    # -- execution -------------------------------------------------------

    def run(self, obj: Any) -> OperationResult:
        """Push ``obj`` through the pFSM chain."""
        outcomes: List[PfsmOutcome] = []
        current = obj
        for pfsm in self.pfsms:
            outcome = pfsm.step(current)
            outcomes.append(outcome)
            if outcome.foiled:
                return OperationResult(
                    operation_name=self.name,
                    completed=False,
                    outcomes=tuple(outcomes),
                    final_object=current,
                    foiled_by=pfsm.name,
                )
            current = outcome.transformed
        return OperationResult(
            operation_name=self.name,
            completed=True,
            outcomes=tuple(outcomes),
            final_object=current,
        )

    # -- analysis ------------------------------------------------------------

    def pfsm(self, name: str) -> PrimitiveFSM:
        """Look up a constituent pFSM by name."""
        for pfsm in self.pfsms:
            if pfsm.name == name:
                return pfsm
        raise KeyError(f"no pFSM named {name!r} in operation {self.name!r}")

    def is_secure(self, domain: Iterable[Any]) -> bool:
        """The Lemma part 1 condition for this operation: every
        constituent pFSM is correctly implemented over the domain.

        Note the domain is the *input* domain of the first activity;
        transforms are applied along accepting paths.
        """
        for obj in domain:
            result = self.run(obj)
            if result.used_hidden_path:
                return False
        return True

    def exploit_witnesses(self, domain: Iterable[Any], limit: int = 10) -> List[Any]:
        """Inputs that complete the operation via a hidden path."""
        found: List[Any] = []
        for obj in domain:
            if self.run(obj).exploited:
                found.append(obj)
                if len(found) >= limit:
                    break
        return found

    # -- securing ----------------------------------------------------------------

    def with_pfsm_secured(self, pfsm_name: str) -> "Operation":
        """Copy with one pFSM's implementation fixed to its spec — the
        single-elementary-activity fix of Observation 1."""
        if pfsm_name not in {p.name for p in self.pfsms}:
            raise KeyError(f"no pFSM named {pfsm_name!r} in operation {self.name!r}")
        new = tuple(
            p.secured() if p.name == pfsm_name else p for p in self.pfsms
        )
        return Operation(self.name, self.object_description, new)

    def fully_secured(self) -> "Operation":
        """Copy with every pFSM secured (Lemma part 1's hypothesis)."""
        return Operation(
            self.name,
            self.object_description,
            tuple(p.secured() for p in self.pfsms),
        )

    def describe(self) -> str:
        """Multi-line summary of the chain."""
        lines = [f"Operation: {self.name} (object: {self.object_description})"]
        lines.extend(f"  {pfsm.describe()}" for pfsm in self.pfsms)
        return "\n".join(lines)
