"""States, transitions, and Condition♦Action labels of the pFSM formalism.

Figure 2 of the paper defines the primitive FSM: three states (the SPEC
check state, the reject state, the accept state) and four transitions:

* ``SPEC_ACPT`` — the specification's accept predicate holds;
* ``SPEC_REJ`` — the specification's reject predicate holds;
* ``IMPL_REJ`` — the implementation rejects what the specification
  rejects (the correct behaviour, drawn solid);
* ``IMPL_ACPT`` — the implementation *accepts* what the specification
  rejects (drawn dotted: the hidden path representing the vulnerability).

Transitions carry ``Condition♦Action`` labels; the paper replaces the
canonical slash with ``♦`` because several examples need slashes in
filenames.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["StateKind", "TransitionKind", "Label", "Transition", "DIAMOND"]

#: The separator glyph of the paper's transition labels.
DIAMOND = "♦"  # ♦


class StateKind(enum.Enum):
    """The three states of a primitive FSM (Figure 2)."""

    SPEC_CHECK = "SPEC check state"
    ACCEPT = "accept state"
    REJECT = "reject state"


class TransitionKind(enum.Enum):
    """The four transitions of a primitive FSM (Figure 2)."""

    SPEC_ACPT = "SPEC_ACPT"
    SPEC_REJ = "SPEC_REJ"
    IMPL_REJ = "IMPL_REJ"
    IMPL_ACPT = "IMPL_ACPT"

    @property
    def is_hidden(self) -> bool:
        """True for the dotted vulnerability transition."""
        return self is TransitionKind.IMPL_ACPT

    @property
    def source(self) -> StateKind:
        """State the transition leaves from."""
        if self in (TransitionKind.SPEC_ACPT, TransitionKind.SPEC_REJ):
            return StateKind.SPEC_CHECK
        return StateKind.REJECT

    @property
    def target(self) -> StateKind:
        """State the transition enters."""
        if self in (TransitionKind.SPEC_ACPT, TransitionKind.IMPL_ACPT):
            return StateKind.ACCEPT
        return StateKind.REJECT


@dataclass(frozen=True)
class Label:
    """A ``Condition♦Action`` transition label.

    Either side may be empty; the paper renders an absent side as ``-``
    (e.g. the missing-check transition ``-♦-``).
    """

    condition: str = ""
    action: str = ""

    def render(self) -> str:
        """The paper's notation, e.g. ``x > 100 ♦ -``."""
        left = self.condition or "-"
        right = self.action or "-"
        return f"{left} {DIAMOND} {right}"

    def __str__(self) -> str:
        return self.render()


@dataclass(frozen=True)
class Transition:
    """A concrete transition of a concrete pFSM.

    ``exists`` captures the paper's "the transition of IMPL_REJ (marked
    by ?) does not exist" — a missing check is modeled as a transition
    that is *absent*, which forces the complementary hidden transition.
    """

    kind: TransitionKind
    label: Label
    exists: bool = True

    @property
    def is_hidden(self) -> bool:
        """True for an IMPL_ACPT (dotted) transition."""
        return self.kind.is_hidden

    def render(self) -> str:
        """Readable one-line form, marking missing transitions with '?'
        and hidden ones as dotted."""
        marker = ""
        if not self.exists:
            marker = " [missing: ?]"
        elif self.is_hidden:
            marker = " [hidden/dotted]"
        return f"{self.kind.value}: {self.label}{marker}"
