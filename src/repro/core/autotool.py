"""The automatic vulnerability analyzer — the paper's stated future
direction ("we hope that a comprehensive understanding of these
predicates will enable us to build an automatic tool for the
vulnerability analysis").

Given an *application adapter* — one probe callable and one object
domain per elementary activity, plus candidate specification predicates
(usually drawn from :mod:`repro.core.catalog`) — the analyzer:

1. probes the implementation over each activity's domain to derive the
   implemented predicate empirically;
2. compares it against every candidate spec, collecting hidden-path
   witnesses (spec-rejected, impl-accepted objects);
3. assembles the surviving ``(activity, spec, probed impl)`` triples
   into a ready-made :class:`~repro.core.machine.VulnerabilityModel`;
4. emits an :class:`AnalysisReport` with per-activity verdicts, the
   witnesses, and foil recommendations.

The #6255 discovery is this loop run by hand; ``examples/`` and the
integration tests run it mechanically against the executable NULL HTTPD
model and recover the same finding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple

from .catalog import CatalogEntry
from .classification import PfsmType
from .discovery import probe_implementation
from .machine import VulnerabilityModel
from .operation import Operation
from .pfsm import PrimitiveFSM
from .predicates import Predicate
from .witness import Domain

__all__ = ["ActivityAdapter", "ActivityVerdict", "AnalysisReport", "AutoAnalyzer"]


@dataclass(frozen=True)
class ActivityAdapter:
    """Everything the analyzer needs about one elementary activity.

    Parameters
    ----------
    name:
        pFSM name in the generated model.
    description:
        What the activity does.
    probe:
        ``probe(obj) -> bool`` — run the (modeled) implementation and
        report whether it *accepted* the object.  Exceptions count as
        rejection.
    domain:
        Candidate objects to probe with.
    candidate_specs:
        Specification predicates to test, most specific first.  Entries
        may be plain predicates or ``(predicate, check_type)`` pairs.
    """

    name: str
    description: str
    probe: Callable[[Any], bool]
    domain: Domain
    candidate_specs: Tuple[Tuple[Predicate, Optional[PfsmType]], ...]

    @staticmethod
    def of(
        name: str,
        description: str,
        probe: Callable[[Any], bool],
        domain: Domain,
        specs: Sequence[Any],
    ) -> "ActivityAdapter":
        """Build an adapter; ``specs`` items may be predicates,
        ``(predicate, type)`` pairs, or catalog entries."""
        normalized: List[Tuple[Predicate, Optional[PfsmType]]] = []
        for spec in specs:
            if isinstance(spec, CatalogEntry):
                normalized.append((spec.instantiate(), spec.check_type))
            elif isinstance(spec, tuple):
                normalized.append((spec[0], spec[1]))
            else:
                normalized.append((spec, None))
        return ActivityAdapter(
            name=name,
            description=description,
            probe=probe,
            domain=domain,
            candidate_specs=tuple(normalized),
        )


@dataclass(frozen=True)
class ActivityVerdict:
    """The analyzer's conclusion for one activity."""

    activity: str
    description: str
    spec: Predicate
    check_type: Optional[PfsmType]
    implementation_checks_anything: bool
    hidden_witnesses: Tuple[Any, ...]

    @property
    def vulnerable(self) -> bool:
        """Does the implementation violate this spec somewhere?"""
        return bool(self.hidden_witnesses)

    def __str__(self) -> str:
        status = "VULNERABLE" if self.vulnerable else "secure"
        sample = (f"; e.g. {self.hidden_witnesses[0]!r}"
                  if self.hidden_witnesses else "")
        return (f"[{status}] {self.activity}: spec '{self.spec.description}'"
                f"{sample}")


@dataclass
class AnalysisReport:
    """Full output of one automatic analysis."""

    operation_name: str
    verdicts: List[ActivityVerdict] = field(default_factory=list)
    model: Optional[VulnerabilityModel] = None

    @property
    def vulnerable_activities(self) -> List[ActivityVerdict]:
        """Activities with at least one hidden-path witness."""
        return [v for v in self.verdicts if v.vulnerable]

    @property
    def is_vulnerable(self) -> bool:
        """Any activity violated?"""
        return bool(self.vulnerable_activities)

    def recommendations(self) -> List[str]:
        """The prescribed fixes: install each violated spec as the
        implementation check at its activity (Observation 1)."""
        return [
            f"install check '{verdict.spec.description}' at activity "
            f"{verdict.activity!r} ({verdict.description})"
            for verdict in self.vulnerable_activities
        ]

    def to_text(self) -> str:
        """Readable multi-line report."""
        lines = [f"automatic analysis of operation {self.operation_name!r}"]
        lines.extend(f"  {verdict}" for verdict in self.verdicts)
        if self.is_vulnerable:
            lines.append("  recommendations:")
            lines.extend(f"    - {r}" for r in self.recommendations())
        else:
            lines.append("  no predicate violations found")
        return "\n".join(lines)


class AutoAnalyzer:
    """Runs the probe → compare → assemble loop."""

    def __init__(self, witness_limit: int = 5) -> None:
        self._witness_limit = witness_limit

    def analyze(
        self, operation_name: str, adapters: Sequence[ActivityAdapter]
    ) -> AnalysisReport:
        """Analyze one operation's activities end to end."""
        report = AnalysisReport(operation_name=operation_name)
        pfsms: List[PrimitiveFSM] = []
        for adapter in adapters:
            probe = probe_implementation(
                adapter.probe, adapter.domain,
                description=f"probed({adapter.name})",
            )
            verdict, pfsm = self._judge(adapter, probe)
            report.verdicts.append(verdict)
            pfsms.append(pfsm)
        operation = Operation(operation_name, "the analyzed object", pfsms)
        report.model = VulnerabilityModel(
            name=f"auto: {operation_name}",
            operations=[operation],
            final_consequence="predicate violation reachable",
        )
        return report

    def _judge(self, adapter: ActivityAdapter, probe) -> Tuple[
            ActivityVerdict, PrimitiveFSM]:
        """Pick the candidate spec with the strongest evidence.

        Preference order: the first candidate with hidden-path
        witnesses (a demonstrated violation); otherwise the first
        candidate (which the implementation satisfies — the secure
        case).
        """
        chosen: Optional[Tuple[Predicate, Optional[PfsmType], Tuple]] = None
        for spec, check_type in adapter.candidate_specs:
            trial = PrimitiveFSM(
                name=adapter.name,
                activity=adapter.description,
                object_name=adapter.name,
                spec_accepts=spec,
                impl_accepts=probe.predicate,
            )
            witnesses = tuple(
                trial.hidden_witnesses(adapter.domain,
                                       limit=self._witness_limit)
            )
            if witnesses:
                chosen = (spec, check_type, witnesses)
                break
            if chosen is None:
                chosen = (spec, check_type, ())
        if chosen is None:
            raise ValueError(
                f"activity {adapter.name!r} has no candidate specs"
            )
        spec, check_type, witnesses = chosen
        verdict = ActivityVerdict(
            activity=adapter.name,
            description=adapter.description,
            spec=spec,
            check_type=check_type,
            implementation_checks_anything=probe.checks_anything,
            hidden_witnesses=witnesses,
        )
        pfsm = PrimitiveFSM(
            name=adapter.name,
            activity=adapter.description,
            object_name=adapter.name,
            spec_accepts=spec,
            impl_accepts=probe.predicate,
            check_type=check_type,
        )
        return verdict, pfsm
