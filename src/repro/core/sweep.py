"""Batched, cached, parallel analysis sweeps — the domain-scale engine.

The paper's future-work vision (and this repo's north star) is a tool
that sweeps derived predicates over whole input corpora and
vulnerability databases.  The primitives in :mod:`repro.core.pfsm` and
:mod:`repro.core.analysis` answer one query at a time; this module makes
the *sweep* — many pFSMs × many domains × many models — the unit of
work, with three cooperating layers:

1. **Closed-form batch paths.**  A pFSM's hidden set is
   ``¬spec ∧ impl`` over its object domain.  When both predicates carry
   a closed-form integer denotation (see
   :mod:`repro.core.predicates`) and the domain is ``range``-backed,
   the hidden set is computed by interval algebra: witness *counting*
   is O(1) and witness *listing* is O(limit), independent of domain
   size.
2. **A shared, bounded predicate cache.**  :class:`PredicateCache`
   memoizes ``(predicate, object) → bool`` with an LRU bound, keyed on
   each predicate's :attr:`~repro.core.predicates.Predicate.cache_key`
   (which changes when the predicate is rebound, so mutated predicates
   are never served stale verdicts).  One cache instance is shared
   across :func:`hidden_witness_scan`,
   :meth:`repro.core.pfsm.PrimitiveFSM.hidden_witnesses`,
   :func:`repro.core.analysis.hidden_path_report`, and
   :class:`repro.core.discovery.DiscoveryEngine` sweeps, so repeated
   sweeps of the same domain do not re-call user predicates.
3. **A parallel executor.**  :func:`sweep_models` fans the per-pFSM
   witness searches across workers and reassembles results in
   deterministic (model, operation, pFSM) order.  Thread pools share
   the caller's cache; ``mode="process"``/``"queue"`` route through the
   chunked warm-pool scheduler in :mod:`repro.core.dist` (predicate
   specs make the tasks picklable — see :mod:`repro.core.predspec`);
   ``mode="auto"`` probes each task individually and splits the list.
   ``resume_from`` persists fingerprint-keyed results to a JSONL store
   so re-running a corpus sweep only computes the delta.

The module deliberately duck-types models and operations (anything with
``all_pfsms()`` / ``pfsms``) so it sits below
:mod:`repro.core.analysis` in the import graph.

Every layer reports through :mod:`repro.obs` when telemetry is enabled:
per-task spans, scan-strategy counters (``sweep.scans.fastpath`` /
``.compiled`` / ``.cached`` / ``.plain``, mirrored as
``plan.strategy.*`` picks), executor decisions (``sweep.pool.*``), and
per-sweep cache-counter deltas (``sweep.cache.*``).  The checks are
hoisted to once per scan/task — the per-object loops are untouched, so
a disabled registry costs nothing measurable.  (Process-pool children
carry their own disabled registries, so per-task telemetry under
``mode="process"`` stays in the children; the parent still records the
pool decision and queue size.)
"""

from __future__ import annotations

import pickle
import threading
from collections import OrderedDict
from itertools import islice
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..obs import DEFAULT as _OBS
from . import columnar as _columnar
from . import plan as _plan
from .predicates import (
    Predicate,
    _clipped_subranges,
    _complement_intervals,
    _intersect_intervals,
    _FULL_LINE,
    _range_backing,
)

__all__ = [
    "PredicateCache",
    "shared_cache",
    "cached_evaluate",
    "hidden_witness_scan",
    "hidden_witness_count",
    "SweepFinding",
    "ModelSweep",
    "sweep_operation",
    "sweep_model",
    "sweep_models",
]


# ---------------------------------------------------------------------------
# Layer 2: the memoized predicate cache.
# ---------------------------------------------------------------------------

#: Shared miss sentinel (``None`` and ``False`` are real verdicts).
_MISS = object()

#: Default scan window: how many domain objects a compiled scan pulls
#: per bulk cache round-trip (``PredicateCache(scan_window=...)`` and
#: ``hidden_witness_scan(scan_window=...)`` override it).
_COMPILED_CHUNK = 512


class PredicateCache:
    """A bounded, thread-safe LRU memo of predicate verdicts.

    Keys prefer the predicate's **spec hash** (semantic identity — see
    :mod:`repro.core.predspec`) so equivalent predicates built in
    different runs, sweeps, or processes share entries; opaque
    predicates fall back to the per-instance :attr:`cache_key` (token +
    mutation version).  Unhashable objects are simply not cached.  The
    LRU bound keeps memory flat across arbitrarily long sweep sessions.

    ``hits``/``misses``/``evictions`` count since construction —
    ``spec_hits`` is the subset of hits served under spec-hash keys (the
    cross-instance hit class); :meth:`stats` packages them (plus
    occupancy and hit rate) for the CLI, the benchmark, and the
    telemetry layer.
    """

    _MISS = _MISS

    def __init__(self, maxsize: int = 1 << 17,
                 scan_window: int = _COMPILED_CHUNK) -> None:
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        if scan_window <= 0:
            raise ValueError("scan_window must be positive")
        self.maxsize = maxsize
        #: How many domain objects a compiled scan pulls per bulk cache
        #: round-trip through this cache (see
        #: :meth:`evaluate_digest_many`).
        self.scan_window = scan_window
        self._data: "OrderedDict[Tuple[Any, ...], bool]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.spec_hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._data)

    def clear(self) -> None:
        """Drop every memoized verdict (counters survive)."""
        with self._lock:
            self._data.clear()

    def stats(self) -> Dict[str, Any]:
        """Counter snapshot: hits (and the spec-keyed subset), misses,
        evictions, size, maxsize, and the hit rate over every lookup so
        far."""
        with self._lock:
            hits, misses = self.hits, self.misses
            spec_hits = self.spec_hits
            evictions, size = self.evictions, len(self._data)
        total = hits + misses
        return {
            "hits": hits,
            "spec_hits": spec_hits,
            "misses": misses,
            "evictions": evictions,
            "size": size,
            "maxsize": self.maxsize,
            "hit_rate": hits / total if total else 0.0,
        }

    def evaluate(self, pred: Predicate, obj: Any) -> bool:
        """``pred.evaluate(obj)``, memoized when ``obj`` is hashable."""
        spec_hash = pred.spec_hash
        try:
            # Spec-hash keys (str) and cache keys (int pair) cannot
            # collide, so both classes share one table.
            key = ((spec_hash, obj) if spec_hash is not None
                   else (pred.cache_key, obj))
            hash(key)
        except TypeError:
            return pred.evaluate(obj)
        with self._lock:
            verdict = self._data.get(key, self._MISS)
            if verdict is not self._MISS:
                self._data.move_to_end(key)
                self.hits += 1
                if spec_hash is not None:
                    self.spec_hits += 1
                return verdict
            self.misses += 1
        verdict = pred.evaluate(obj)
        with self._lock:
            self._data[key] = verdict
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.evictions += 1
        return verdict

    def evaluate_digest(self, digest: str, obj: Any,
                        evaluate: Callable[[Any, Any], bool],
                        memo: Any = None) -> bool:
        """``evaluate(obj, memo)`` memoized under ``(digest, obj)`` — the
        compiled-program twin of :meth:`evaluate`.  ``digest`` is a
        :class:`~repro.core.plan.ScanProgram` structural digest
        (order-insensitive over folded spec trees), so structurally
        equal programs compiled from differently-associated source specs
        share entries; it lives in a separate digest space from the
        predicate spec hashes sharing this table, so the two key classes
        never alias.
        """
        try:
            key = (digest, obj)
            hash(key)
        except TypeError:
            return evaluate(obj, memo)
        with self._lock:
            verdict = self._data.get(key, self._MISS)
            if verdict is not self._MISS:
                self._data.move_to_end(key)
                self.hits += 1
                self.spec_hits += 1
                return verdict
            self.misses += 1
        verdict = evaluate(obj, memo)
        with self._lock:
            self._data[key] = verdict
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.evictions += 1
        return verdict

    def evaluate_digest_many(self, digest: str, chunk: List[Any],
                             evaluate: Callable[[Any, Any], bool],
                             memo: Any = None) -> Tuple[List[Any], int]:
        """Bulk :meth:`evaluate_digest` over ``chunk``: one lock
        round-trip for all the lookups and one for all the stores,
        instead of two per object.  Returns ``(verdicts, computed)``
        where ``verdicts`` matches ``chunk`` order and ``computed`` is
        how many verdicts were actually evaluated (equal hashable
        objects repeated within the chunk are judged once; unhashable
        objects bypass the cache and are always evaluated).
        """
        _miss = self._MISS
        verdicts: List[Any] = [_miss] * len(chunk)
        keys: List[Any] = [None] * len(chunk)
        pending: List[int] = []
        with self._lock:
            data = self._data
            for i, obj in enumerate(chunk):
                try:
                    key = (digest, obj)
                    cached = data.get(key, _miss)
                except TypeError:
                    pending.append(i)
                    continue
                keys[i] = key
                if cached is _miss:
                    pending.append(i)
                else:
                    data.move_to_end(key)
                    verdicts[i] = cached
            hits = len(chunk) - len(pending)
            self.hits += hits
            self.spec_hits += hits
            self.misses += len(pending)
        firsts: Dict[Any, int] = {}
        compute: List[int] = []
        for i in pending:
            key = keys[i]
            if key is None or firsts.setdefault(key, i) is i:
                compute.append(i)
        for i in compute:
            verdicts[i] = evaluate(chunk[i], memo)
        for i in pending:
            if verdicts[i] is _miss:
                verdicts[i] = verdicts[firsts[keys[i]]]
        with self._lock:
            data = self._data
            for i in pending:
                key = keys[i]
                if key is not None:
                    data[key] = verdicts[i]
                    data.move_to_end(key)
            while len(data) > self.maxsize:
                data.popitem(last=False)
                self.evictions += 1
        return verdicts, len(compute)


#: The process-wide default cache shared by every sweep entry point that
#: is not handed an explicit cache.
_SHARED_CACHE = PredicateCache()

#: Sentinel: pass as ``cache=`` to disable memoization entirely.
NO_CACHE = "no-cache"


def shared_cache() -> PredicateCache:
    """The process-wide default :class:`PredicateCache`."""
    return _SHARED_CACHE


def _resolve_cache(cache: Any) -> Optional[PredicateCache]:
    if cache is None:
        return _SHARED_CACHE
    if cache is NO_CACHE or cache is False:
        return None
    return cache


def cached_evaluate(pred: Predicate, obj: Any,
                    cache: Optional[PredicateCache] = None) -> bool:
    """Evaluate ``pred`` on ``obj`` through a cache (shared by default)."""
    resolved = _resolve_cache(cache)
    if resolved is None:
        return pred.evaluate(obj)
    return resolved.evaluate(pred, obj)


# ---------------------------------------------------------------------------
# Layer 1: closed-form and batched hidden-path scans.
# ---------------------------------------------------------------------------

def _hidden_intervals(pfsm: Any):
    """The interval set of ``¬spec ∧ impl``, or None if either predicate
    is opaque."""
    spec_iv = pfsm.spec_accepts.intervals
    if spec_iv is None:
        return None
    impl = pfsm.impl_accepts
    if impl is None:
        impl_iv = _FULL_LINE  # no check at all accepts everything
    else:
        impl_iv = impl.intervals
        if impl_iv is None:
            return None
    return _intersect_intervals(_complement_intervals(spec_iv), impl_iv)


def hidden_witness_count(pfsm: Any, domain: Iterable[Any]) -> int:
    """How many domain objects ride the hidden path — O(1) per interval
    on the closed-form path, an O(n) scan otherwise."""
    backing = _range_backing(domain)
    if backing is not None:
        hidden = _hidden_intervals(pfsm)
        if hidden is not None:
            if _OBS.enabled:
                _OBS.incr("sweep.counts.fastpath")
            return sum(
                len(sub) for sub in _clipped_subranges(backing, hidden)
            )
    if _OBS.enabled:
        _OBS.incr("sweep.counts.scan")
    takes = pfsm.takes_hidden_path
    return sum(1 for obj in domain if takes(obj))


def _compiled_scan(program: Any, domain: Iterable[Any], limit: int,
                   resolved: Optional[PredicateCache],
                   memo: Any, scan_window: Optional[int] = None) -> List[Any]:
    """Scan a domain through a compiled hidden-set program.

    With a :class:`PredicateCache` the scan runs in
    ``_COMPILED_CHUNK``-sized windows through
    :meth:`PredicateCache.evaluate_digest_many` — two lock round-trips
    per window instead of two per object — and verdicts stay memoized
    under the program digest so repeated sweeps are warm across calls.
    Without a cache it keeps the cached path's per-scan identity memo
    (each distinct object reference is judged once).  ``memo`` is the
    cross-task :class:`~repro.core.plan.NodeMemo` carrying CSE verdicts
    between tasks of one sweep (``None`` gets a scan-local one).
    ``scan_window`` overrides the window size; by default the cache's
    own :attr:`PredicateCache.scan_window` governs.
    """
    if memo is None:
        memo = _plan.NodeMemo()
    evaluate = program.evaluate
    _miss = _MISS
    found: List[Any] = []
    judged = 0
    seen: Dict[int, Any] = {}  # id(obj) -> rides the hidden path
    pinned: List[Any] = []  # keep memoized objects alive: no id reuse
    if resolved is not None:
        window = scan_window if scan_window else \
            getattr(resolved, "scan_window", _COMPILED_CHUNK)
        digest = program.digest
        bulk = resolved.evaluate_digest_many
        pull = iter(domain)
        while len(found) < limit:
            chunk = list(islice(pull, window))
            if not chunk:
                break
            # The identity memo screens repeated references lock-free;
            # only first occurrences pay a cache round-trip.
            fresh = []
            for candidate in chunk:
                ident = id(candidate)
                if ident not in seen:
                    seen[ident] = _miss
                    pinned.append(candidate)
                    fresh.append(candidate)
            if fresh:
                verdicts, computed = bulk(digest, fresh, evaluate, memo)
                judged += computed
                for candidate, verdict in zip(fresh, verdicts):
                    seen[id(candidate)] = verdict
            for candidate in chunk:
                if seen[id(candidate)]:
                    found.append(candidate)
                    if len(found) >= limit:
                        break
    else:
        for candidate in domain:
            ident = id(candidate)
            hidden = seen.get(ident, _miss)
            if hidden is _miss:
                hidden = evaluate(candidate, memo)
                seen[ident] = hidden
                pinned.append(candidate)
            if hidden:
                found.append(candidate)
                if len(found) >= limit:
                    break
        judged = len(seen)
    if _OBS.enabled:
        _OBS.incr("sweep.scans.compiled")
        _OBS.incr("plan.strategy.compiled")
        _OBS.incr("sweep.objects.judged", judged)
        _OBS.incr("sweep.witnesses", len(found))
        hits, misses = memo.drain()
        if hits or misses:
            _OBS.incr("plan.cse.hits", hits)
            _OBS.incr("plan.cse.misses", misses)
    return found


def hidden_witness_scan(
    pfsm: Any,
    domain: Iterable[Any],
    limit: int = 10,
    cache: Any = NO_CACHE,
    memo: Any = None,
    scan_window: Optional[int] = None,
) -> List[Any]:
    """Hidden-path witnesses of one pFSM over one domain.

    Five strategies, fastest applicable wins (the dominance order of
    :func:`repro.core.plan.plan_scan`):

    * closed-form interval algebra when both predicates have one and the
      domain is ``range``-backed (O(limit), not O(n));
    * a columnar whole-domain mask pass when the compiled program
      vectorizes over the domain's struct-of-arrays encoding (see
      :mod:`repro.core.columnar`; requires the planner, bypass with
      :func:`repro.core.columnar.set_enabled`);
    * a compiled single-pass scan program when both predicates carry
      specs and the planner is enabled (see :mod:`repro.core.plan`) —
      ``memo`` optionally shares CSE verdicts across the tasks of one
      sweep;
    * cached scalar scan when a :class:`PredicateCache` is supplied
      (``cache=None`` selects the shared cache) — repeated *references*
      within the domain are additionally memoized per scan by identity
      (each distinct object is judged once, however often it recurs),
      with every memoized object pinned so ids stay unique for the
      scan's duration;
    * plain scalar scan otherwise — bit-identical to the seed behaviour.

    Witness order always matches domain iteration order, and repeated
    occurrences of a witness are reported per occurrence, exactly as the
    scalar scan would.  Objects are assumed value-stable for the
    duration of one scan (predicates are pure).  ``limit <= 0`` returns
    no witnesses.  ``scan_window`` overrides the compiled strategy's
    bulk cache window (default: the cache's own
    :attr:`PredicateCache.scan_window`).
    """
    if limit <= 0:
        return []
    backing = _range_backing(domain)
    if backing is not None:
        hidden = _hidden_intervals(pfsm)
        if hidden is not None:
            found: List[Any] = []
            for sub in _clipped_subranges(backing, hidden):
                take = min(limit - len(found), len(sub))
                found.extend(sub[:take])
                if len(found) >= limit:
                    break
            if _OBS.enabled:
                _OBS.incr("sweep.scans.fastpath")
                _OBS.incr("plan.strategy.interval")
                _OBS.incr("sweep.witnesses", len(found))
            return found
    resolved = _resolve_cache(cache)
    program = _plan.program_for(pfsm)
    if program is not None:
        found = _columnar.scan_program(program, domain, limit)
        if found is not None:
            if _OBS.enabled:
                _OBS.incr("sweep.scans.columnar")
                _OBS.incr("plan.strategy.columnar")
                try:
                    _OBS.incr("sweep.objects.judged", len(domain))
                except TypeError:
                    pass
                _OBS.incr("sweep.witnesses", len(found))
            return found
        return _compiled_scan(program, domain, limit, resolved, memo,
                              scan_window)
    found = []
    if resolved is None:
        takes = pfsm.takes_hidden_path
        for candidate in domain:
            if takes(candidate):
                found.append(candidate)
                if len(found) >= limit:
                    break
        if _OBS.enabled:
            _OBS.incr("sweep.scans.plain")
            _OBS.incr("plan.strategy.plain")
            _OBS.incr("sweep.witnesses", len(found))
        return found
    spec, impl = pfsm.spec_accepts, pfsm.impl_accepts
    _miss = _MISS
    verdicts: Dict[int, bool] = {}  # id(obj) -> rides the hidden path
    pinned: List[Any] = []  # keep memoized objects alive: no id reuse
    for candidate in domain:
        ident = id(candidate)
        hidden = verdicts.get(ident, _miss)
        if hidden is _miss:
            hidden = not resolved.evaluate(spec, candidate) and (
                impl is None or resolved.evaluate(impl, candidate)
            )
            verdicts[ident] = hidden
            pinned.append(candidate)
        if hidden:
            found.append(candidate)
            if len(found) >= limit:
                break
    if _OBS.enabled:
        _OBS.incr("sweep.scans.cached")
        _OBS.incr("plan.strategy.cached")
        _OBS.incr("sweep.objects.judged", len(verdicts))
        _OBS.incr("sweep.witnesses", len(found))
    return found


# ---------------------------------------------------------------------------
# Layer 3: the parallel sweep executor.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SweepFinding:
    """One pFSM with hidden-path witnesses, located within a sweep."""

    model_name: str
    operation_name: str
    pfsm_name: str
    activity: str
    witnesses: Tuple[Any, ...]

    def __str__(self) -> str:
        sample = self.witnesses[0] if self.witnesses else None
        return (
            f"{self.model_name}/{self.operation_name}/{self.pfsm_name} "
            f"({self.activity}): hidden path, e.g. {sample!r}"
        )


@dataclass(frozen=True)
class ModelSweep:
    """All findings for one model, in cascade order."""

    model_name: str
    findings: Tuple[SweepFinding, ...]

    @property
    def vulnerable(self) -> bool:
        """Did any pFSM admit a hidden-path witness?"""
        return bool(self.findings)


#: The sweep task shape: ``(model_name, operation_name, pfsm, domain,
#: limit)``.  Caches are *not* part of the tuple (they hold locks, so
#: they would poison picklability); each executor decides its own cache.
SweepTask = Tuple[str, str, Any, Any, int]


def _scan_task(task: SweepTask, cache: Any = NO_CACHE, memo: Any = None
               ) -> Optional[SweepFinding]:
    """One unit of sweep work: scan a single pFSM's domain."""
    model_name, operation_name, pfsm, domain, limit = task
    with _OBS.span("sweep.task", model=model_name,
                   operation=operation_name, pfsm=pfsm.name) as span:
        witnesses = hidden_witness_scan(pfsm, domain, limit=limit,
                                        cache=cache, memo=memo)
        span.set(witnesses=len(witnesses))
    if _OBS.enabled:
        _OBS.incr("sweep.tasks.completed")
    if not witnesses:
        return None
    return SweepFinding(
        model_name=model_name,
        operation_name=operation_name,
        pfsm_name=pfsm.name,
        activity=pfsm.activity,
        witnesses=tuple(witnesses),
    )


def _scan_task_with(cache: Any, parent_id: Optional[int] = None,
                    memo: Any = None, trace_ctx: Any = None
                    ) -> Callable[[SweepTask], Optional[SweepFinding]]:
    """A :func:`_scan_task` closure binding the executor's cache (and
    shared plan memo) and — for worker threads — parenting spans under
    the submitting thread's live span and continuing its ambient trace
    context (captured at submission)."""
    def run(task: SweepTask) -> Optional[SweepFinding]:
        if parent_id is None and trace_ctx is None:
            return _scan_task(task, cache=cache, memo=memo)
        previous = _OBS.set_inherited_parent(parent_id)
        previous_trace = _OBS.set_trace(trace_ctx)
        try:
            return _scan_task(task, cache=cache, memo=memo)
        finally:
            _OBS.set_inherited_parent(previous)
            _OBS.set_trace(previous_trace)
    return run


def _serialize_tasks(tasks: Sequence[Any]) -> List[Optional[bytes]]:
    """Per-task picklability probe.

    Returns each task's serialized bytes (reused verbatim as the
    dispatch payload by :mod:`repro.core.dist`) or ``None`` for the
    tasks that do not pickle — one opaque predicate no longer drags the
    whole sweep onto threads.  Payloads carry ``(task, program)`` pairs:
    the compiled hidden-set plan ships alongside the task, priming the
    worker's plan cache (with the parent's CSE marks) on unpickle.
    """
    payloads: List[Optional[bytes]] = []
    for task in tasks:
        program = _plan.program_for(task[2])
        try:
            payloads.append(pickle.dumps((task, program)))
        except Exception:
            try:
                payloads.append(pickle.dumps((task, None)))
            except Exception:
                payloads.append(None)
    return payloads


def _run_tasks(
    tasks: Sequence[SweepTask],
    workers: Optional[int],
    mode: str,
    cache: Any = NO_CACHE,
    keys: Optional[Sequence[Optional[str]]] = None,
    memo: Any = None,
) -> List[Optional[SweepFinding]]:
    """Execute scan tasks, preserving submission order in the results.

    ``mode`` selects the executor:

    * ``"thread"`` — thread pool sharing ``cache``; ``workers`` of
      ``None``/``<= 1`` runs inline.
    * ``"process"`` / ``"queue"`` — the chunked warm-pool scheduler in
      :mod:`repro.core.dist` (workers use their own per-process shared
      caches; ``keys`` enables fingerprint-keyed result reuse).
    * ``"cluster"`` — the same scheduler, dispatching chunks through
      the ambient :mod:`repro.cluster` coordinator to worker agents
      (results bit-for-bit equal to ``"process"``).
    * ``"auto"`` — probes each task individually: picklable tasks go to
      the process scheduler, the opaque remainder to threads, results
      reassembled in order.

    Each executor decision is recorded as a ``sweep.pool`` telemetry
    event.
    """
    obs_on = _OBS.enabled
    if obs_on:
        _OBS.incr("sweep.tasks.queued", len(tasks))
    if mode in ("process", "queue", "cluster"):
        from . import dist

        results = dist.run_tasks(tasks, workers or 1, backend=mode,
                                 keys=keys)
        if obs_on:
            _OBS.incr("sweep.pool.process")
            _OBS.event("sweep.pool", kind=mode, workers=workers or 1,
                       tasks=len(tasks))
        return results
    if not workers or workers <= 1 or len(tasks) <= 1:
        if obs_on:
            _OBS.incr("sweep.pool.inline")
            _OBS.event("sweep.pool", kind="inline", tasks=len(tasks))
        return [_scan_task(task, cache=cache, memo=memo) for task in tasks]
    threaded = list(range(len(tasks)))
    results: List[Optional[SweepFinding]] = [None] * len(tasks)
    if mode == "auto":
        payloads = _serialize_tasks(tasks)
        distributable = [i for i, p in enumerate(payloads) if p is not None]
        if distributable:
            from . import dist

            sub_results = dist.run_tasks(
                [tasks[i] for i in distributable],
                workers,
                backend="process",
                keys=[keys[i] for i in distributable] if keys else None,
                payloads=[payloads[i] for i in distributable],
            )
            for i, finding in zip(distributable, sub_results):
                results[i] = finding
            threaded = [i for i, p in enumerate(payloads) if p is None]
            if obs_on:
                _OBS.incr("sweep.pool.process")
                _OBS.event("sweep.pool", kind="auto", workers=workers,
                           tasks=len(tasks),
                           distributed=len(distributable),
                           threaded=len(threaded))
            if not threaded:
                return results
    parent_id = None
    trace_ctx = None
    if obs_on:
        parent = _OBS.current_span()
        if parent is not None:
            parent_id = parent.span_id
        trace_ctx = _OBS.current_trace()
    worker_fn = _scan_task_with(cache, parent_id, memo, trace_ctx)
    with ThreadPoolExecutor(max_workers=workers) as pool:
        for i, finding in zip(threaded,
                              pool.map(worker_fn,
                                       [tasks[i] for i in threaded])):
            results[i] = finding
    if obs_on:
        _OBS.incr("sweep.pool.thread")
        _OBS.event("sweep.pool", kind="thread", workers=workers,
                   tasks=len(threaded))
    return results


def _record_cache_delta(before: Optional[Mapping[str, Any]],
                        cache: Optional[PredicateCache]) -> None:
    """Fold the cache-counter movement of one sweep into the registry.

    Recorded at sweep granularity (not per lookup) so the memoized hot
    path never touches the registry; with a shared cache under
    concurrent sweeps the deltas are attributed to whichever sweep reads
    them first — totals stay exact.
    """
    if before is None or cache is None:
        return
    after = cache.stats()
    _OBS.incr("sweep.cache.hits", after["hits"] - before["hits"])
    _OBS.incr("sweep.cache.misses", after["misses"] - before["misses"])
    _OBS.incr("sweep.cache.evictions",
              after["evictions"] - before["evictions"])
    # every cache miss is one real predicate evaluation
    _OBS.incr("sweep.predicates.evaluated",
              after["misses"] - before["misses"])
    _OBS.gauge("sweep.cache.size", after["size"])


def sweep_operation(
    operation: Any,
    domains: Mapping[str, Any],
    *,
    model_name: str = "",
    limit: int = 5,
    workers: Optional[int] = None,
    cache: Any = None,
    mode: str = "thread",
) -> List[SweepFinding]:
    """Witness-scan every pFSM of one operation (see :func:`sweep_models`)."""
    resolved = _resolve_cache(cache)
    tasks: List[SweepTask] = [
        (model_name, operation.name, pfsm, domains[pfsm.name], limit)
        for pfsm in operation.pfsms
        if domains.get(pfsm.name) is not None
    ]
    with _OBS.span("sweep.operation", operation=operation.name,
                   tasks=len(tasks)) as span:
        before = resolved.stats() if _OBS.enabled and resolved is not None else None
        memo = _plan.NodeMemo() if _plan.is_enabled() else None
        findings = [
            f for f in _run_tasks(tasks, workers, mode,
                                  cache=NO_CACHE if resolved is None
                                  else resolved, memo=memo)
            if f is not None
        ]
        _record_cache_delta(before, resolved)
        span.set(findings=len(findings))
    return findings


def sweep_model(
    model: Any,
    domains: Mapping[str, Any],
    *,
    limit: int = 5,
    workers: Optional[int] = None,
    cache: Any = None,
    mode: str = "thread",
) -> ModelSweep:
    """Witness-scan every pFSM of one model (see :func:`sweep_models`)."""
    resolved = _resolve_cache(cache)
    tasks: List[SweepTask] = [
        (model.name, operation.name, pfsm, domains[pfsm.name], limit)
        for operation, pfsm in model.all_pfsms()
        if domains.get(pfsm.name) is not None
    ]
    with _OBS.span("sweep.model", model=model.name,
                   tasks=len(tasks)) as span:
        before = resolved.stats() if _OBS.enabled and resolved is not None else None
        memo = _plan.NodeMemo() if _plan.is_enabled() else None
        findings = [
            f for f in _run_tasks(tasks, workers, mode,
                                  cache=NO_CACHE if resolved is None
                                  else resolved, memo=memo)
            if f is not None
        ]
        _record_cache_delta(before, resolved)
        span.set(findings=len(findings))
    return ModelSweep(model_name=model.name, findings=tuple(findings))


def sweep_models(
    models: Mapping[str, Any],
    domains: Mapping[str, Mapping[str, Any]],
    *,
    limit: int = 5,
    workers: Optional[int] = None,
    cache: Any = None,
    mode: str = "thread",
    backend: Optional[str] = None,
    resume_from: Optional[str] = None,
) -> List[ModelSweep]:
    """Hidden-path sweep across a whole corpus of models.

    Parameters
    ----------
    models:
        Label → model mapping (e.g. ``repro.models.all_extended_models()``).
    domains:
        Label → (pFSM name → domain) mapping, matching
        ``all_extended_pfsm_domains()``.  pFSMs without a domain entry
        are skipped.
    limit:
        Max witnesses recorded per pFSM.
    workers:
        ``None``/``0``/``1`` runs inline (thread mode); otherwise the
        per-pFSM scans fan out across this many workers.
    cache:
        A :class:`PredicateCache` to share, ``None`` for the process-wide
        shared cache, or :data:`NO_CACHE` to disable memoization
        (thread/inline executors; process workers always use their own
        per-process shared cache).
    mode:
        ``"thread"`` (default), ``"process"`` / ``"queue"`` (the chunked
        warm-pool scheduler of :mod:`repro.core.dist`, which also reuses
        fingerprint-keyed results within the session), ``"cluster"``
        (the same scheduler dispatching through the ambient
        :mod:`repro.cluster` coordinator to worker agents — results
        bit-for-bit equal to ``"process"``), or ``"auto"`` (per-task
        probe: picklable tasks to the process scheduler, the rest to
        threads).
    backend:
        Alias for ``mode`` (``sweep_models(..., backend="cluster")``);
        when given it wins over ``mode``.
    resume_from:
        Path to a JSONL :class:`~repro.core.dist.ResultStore`.  Tasks
        whose fingerprint key is already stored are *not* re-scanned
        (``dist.resume.skips``); newly computed keyed results are
        appended, so a corpus sweep re-run after adding one model only
        computes the delta.  Works with every mode.

    Results are deterministic: one :class:`ModelSweep` per input model in
    mapping order, findings in cascade order — identical to the serial
    sweep regardless of worker count or how many results were resumed.
    """
    if backend is not None:
        mode = backend
    resolved = _resolve_cache(cache)
    tasks: List[SweepTask] = []
    task_models: List[Any] = []  # the model behind tasks[i], for keying
    boundaries: List[Tuple[str, int]] = []  # (label, task count) per model
    for label, model in models.items():
        model_domains = domains.get(label, {})
        start = len(tasks)
        for operation, pfsm in model.all_pfsms():
            domain = model_domains.get(pfsm.name)
            if domain is None:
                continue
            tasks.append((model.name, operation.name, pfsm, domain, limit))
            task_models.append(model)
        boundaries.append((label, len(tasks) - start))

    keys: Optional[List[Optional[str]]] = None
    if resume_from is not None or mode in ("process", "queue", "cluster"):
        from . import dist

        keys = [dist.task_key(model, task)
                for model, task in zip(task_models, tasks)]
    store = None
    known: Mapping[str, Any] = {}
    resumed: Dict[int, Optional[SweepFinding]] = {}
    if resume_from is not None:
        from . import dist

        store = dist.ResultStore(resume_from)
        known = store.load()
        for index, key in enumerate(keys or []):
            if key is not None and key in known:
                resumed[index] = known[key]
        if _OBS.enabled and resumed:
            _OBS.incr("dist.resume.skips", len(resumed))
    remaining = [i for i in range(len(tasks)) if i not in resumed]

    with _OBS.span("sweep.models", models=len(models), tasks=len(tasks),
                   workers=workers or 1, mode=mode,
                   resumed=len(resumed)) as span:
        before = resolved.stats() if _OBS.enabled and resolved is not None else None
        memo = _plan.NodeMemo() if _plan.is_enabled() else None
        computed = _run_tasks(
            [tasks[i] for i in remaining], workers, mode,
            cache=NO_CACHE if resolved is None else resolved,
            keys=[keys[i] for i in remaining] if keys is not None else None,
            memo=memo,
        )
        _record_cache_delta(before, resolved)
        results: List[Optional[SweepFinding]] = [None] * len(tasks)
        for index, finding in resumed.items():
            results[index] = finding
        for index, finding in zip(remaining, computed):
            results[index] = finding
        if store is not None and keys is not None:
            store.record_many([
                (keys[i], results[i]) for i in remaining
                if keys[i] is not None and keys[i] not in known
            ])
        sweeps: List[ModelSweep] = []
        cursor = 0
        for (label, count), model in zip(boundaries, models.values()):
            chunk = results[cursor:cursor + count]
            cursor += count
            sweeps.append(
                ModelSweep(
                    model_name=model.name,
                    findings=tuple(f for f in chunk if f is not None),
                )
            )
        span.set(findings=sum(len(s.findings) for s in sweeps))
    return sweeps
