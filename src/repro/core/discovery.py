"""The discovery engine: finding *new* vulnerabilities while modeling
known ones.

The paper's headline demonstration (Section 5.1): while building the FSM
model of NULL HTTPD's known heap overflow, the authors examined the
predicate of each elementary activity against the implementation and
found that pFSM2 — "length(input) <= size(buffer)" — had no IMPL_REJ in
version 0.5.1 either: the ``recv`` loop's ``||``-for-``&&`` logic error
meant the implementation accepted arbitrarily long inputs.  That became
Bugtraq #6255.

The engine generalises the process:

1. For each elementary activity of an operation, take its *spec*
   predicate (derived from the vulnerability report / deduced from the
   application, per the paper's footnote 6).
2. Derive the *implemented* predicate **empirically**, by probing the
   executable application model over a domain of inputs and observing
   which are rejected (:func:`probe_implementation`).
3. Report every activity where the probed acceptance set strictly
   exceeds the spec's acceptance set — a hidden path, i.e. a (possibly
   new) vulnerability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..obs import DEFAULT as _OBS
from .operation import Operation
from .pfsm import PrimitiveFSM
from .predicates import Predicate
from .sweep import hidden_witness_scan, sweep_operation as _sweep_operation
from .witness import Domain

__all__ = [
    "ProbeResult",
    "probe_implementation",
    "Finding",
    "DiscoveryEngine",
]


@dataclass(frozen=True)
class ProbeResult:
    """An empirically derived implementation predicate."""

    accepted: Tuple[Any, ...]
    rejected: Tuple[Any, ...]
    predicate: Predicate

    @property
    def checks_anything(self) -> bool:
        """False when the implementation rejected nothing in the probe —
        the 'no check performed' signature."""
        return bool(self.rejected)


def probe_implementation(
    accepts: Callable[[Any], bool],
    domain: Domain,
    description: str = "probed implementation",
) -> ProbeResult:
    """Build an implementation predicate by observation.

    ``accepts(obj)`` should run the real (modeled) code path and report
    whether the input got through — e.g. "ReadPOSTData returned without
    error and copied the body".  Exceptions count as rejection.
    """
    accepted: List[Any] = []
    rejected: List[Any] = []
    by_value: Dict[Any, bool] = {}
    by_identity: Dict[int, bool] = {}
    with _OBS.span("discovery.probe", description=description) as span:
        for obj in domain:
            try:
                verdict = bool(accepts(obj))
            except Exception:
                verdict = False
            try:
                by_value[obj] = verdict
            except TypeError:  # unhashable — fall back to identity
                by_identity[id(obj)] = verdict
            (accepted if verdict else rejected).append(obj)
        span.set(probes=len(accepted) + len(rejected),
                 rejected=len(rejected))
    if _OBS.enabled:
        _OBS.incr("discovery.probes", len(accepted) + len(rejected))

    # Memoize within the probed domain (hashable objects by value,
    # unhashable by identity — the accepted/rejected tuples pin those
    # identities alive); unseen objects are re-probed live.
    missing = object()

    def impl(obj: Any) -> bool:
        try:
            recorded = by_value.get(obj, missing)
        except TypeError:
            recorded = by_identity.get(id(obj), missing)
        if recorded is not missing:
            return recorded
        try:
            return bool(accepts(obj))
        except Exception:
            return False

    return ProbeResult(
        accepted=tuple(accepted),
        rejected=tuple(rejected),
        predicate=Predicate(impl, description),
    )


@dataclass(frozen=True)
class Finding:
    """A discovered hidden path at one elementary activity."""

    operation_name: str
    pfsm_name: str
    activity: str
    spec_description: str
    witnesses: Tuple[Any, ...]
    known: bool = False  # True when the activity was already reported

    @property
    def is_new(self) -> bool:
        """A finding at an activity not previously reported — the
        #6255-style discovery."""
        return not self.known

    def __str__(self) -> str:
        tag = "KNOWN" if self.known else "NEW"
        sample = self.witnesses[0] if self.witnesses else None
        return (
            f"[{tag}] {self.operation_name}/{self.pfsm_name}: "
            f"implementation violates spec ({self.spec_description}); "
            f"witness: {sample!r}"
        )


class DiscoveryEngine:
    """Systematic hidden-path sweep over an operation's activities.

    Parameters
    ----------
    known_vulnerable:
        Names of pFSMs already reported as vulnerable (so findings
        elsewhere are flagged new).
    """

    def __init__(self, known_vulnerable: Iterable[str] = ()) -> None:
        self._known = frozenset(known_vulnerable)

    def sweep_operation(
        self,
        operation: Operation,
        domains: Dict[str, Domain],
        limit: int = 5,
        workers: Optional[int] = None,
        cache: Any = None,
    ) -> List[Finding]:
        """Check every pFSM of ``operation`` against its object domain.

        Scans ride the sweep engine: closed-form batch paths, a shared
        predicate cache (``cache=None`` selects the process-wide one),
        and optional fan-out across ``workers`` threads — results stay
        in activity order either way.
        """
        specs = {pfsm.name: pfsm for pfsm in operation.pfsms}
        with _OBS.span("discovery.sweep", operation=operation.name,
                       pfsms=len(operation.pfsms)) as span:
            findings = [
                Finding(
                    operation_name=found.operation_name,
                    pfsm_name=found.pfsm_name,
                    activity=found.activity,
                    spec_description=specs[found.pfsm_name]
                    .spec_accepts.description,
                    witnesses=found.witnesses,
                    known=found.pfsm_name in self._known,
                )
                for found in _sweep_operation(
                    operation, domains, limit=limit, workers=workers,
                    cache=cache,
                )
            ]
            span.set(findings=len(findings))
        if _OBS.enabled:
            _OBS.incr("discovery.findings", len(findings))
            _OBS.incr("discovery.findings.new",
                      sum(1 for f in findings if f.is_new))
        return findings

    def sweep_probed(
        self,
        operation_name: str,
        activities: Sequence[Tuple[str, str, Predicate, Callable[[Any], bool]]],
        domains: Dict[str, Domain],
        limit: int = 5,
    ) -> List[Finding]:
        """Sweep with *probed* implementations.

        ``activities`` is a list of ``(pfsm_name, activity_description,
        spec_predicate, accepts_callable)``; each implementation predicate
        is derived by probing the callable over the activity's domain,
        then compared to the spec — the full §5.1 discovery workflow.
        """
        findings: List[Finding] = []
        with _OBS.span("discovery.sweep_probed", operation=operation_name,
                       activities=len(activities)) as span:
            for pfsm_name, activity, spec, accepts in activities:
                domain = domains.get(pfsm_name)
                if domain is None:
                    continue
                probe = probe_implementation(
                    accepts, domain, description=f"probed({pfsm_name})"
                )
                pfsm = PrimitiveFSM(
                    name=pfsm_name,
                    activity=activity,
                    object_name=pfsm_name,
                    spec_accepts=spec,
                    impl_accepts=probe.predicate,
                )
                witnesses = pfsm.hidden_witnesses(domain, limit=limit)
                if witnesses:
                    findings.append(
                        Finding(
                            operation_name=operation_name,
                            pfsm_name=pfsm_name,
                            activity=activity,
                            spec_description=spec.description,
                            witnesses=tuple(witnesses),
                            known=pfsm_name in self._known,
                        )
                    )
            span.set(findings=len(findings))
        if _OBS.enabled:
            _OBS.incr("discovery.findings", len(findings))
            _OBS.incr("discovery.findings.new",
                      sum(1 for f in findings if f.is_new))
        return findings

    @staticmethod
    def new_findings(findings: Iterable[Finding]) -> List[Finding]:
        """Only the findings at previously unreported activities."""
        return [finding for finding in findings if finding.is_new]
