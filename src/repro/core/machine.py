"""The full FSM model: cascaded operations joined by propagation gates.

Section 4's third step: "we cascade the operations to model the
vulnerable implementation."  The triangle between operations in Figures
3–7 is the **propagation gate**: exploiting operation *i* is the
precondition for exploiting operation *i+1* (e.g. overwriting
``addr_setuid`` in Figure 3's Operation 1 is the precondition for
executing ``Mcode`` in Operation 2).

A gate carries the exploited state forward: its ``carry`` function maps
the completed :class:`~repro.core.operation.OperationResult` to the
input object of the next operation.  Running a model therefore yields an
end-to-end :class:`~repro.core.trace.ExploitTrace` whose success means
the exploit traversed *every* operation — which, by the paper's Lemma,
requires a hidden path in each of them unless the input was benign.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..obs import DEFAULT as _OBS
from .operation import Operation, OperationResult
from .pfsm import PrimitiveFSM
from .trace import EventKind, ExploitTrace

__all__ = ["PropagationGate", "VulnerabilityModel", "ModelResult"]


@dataclass(frozen=True)
class PropagationGate:
    """The causality triangle between two operations.

    Parameters
    ----------
    description:
        What the gate denotes, e.g. ``".GOT entry of setuid points to
        Mcode"`` (upper gate of Figure 3).
    carry:
        Maps the upstream :class:`OperationResult` to the downstream
        operation's input object.  Defaults to passing the final object
        through unchanged.
    """

    description: str
    carry: Callable[[OperationResult], Any] = field(
        default=lambda result: result.final_object
    )


@dataclass(frozen=True)
class ModelResult:
    """Outcome of traversing a vulnerability model end to end."""

    model_name: str
    compromised: bool
    trace: ExploitTrace
    operation_results: Tuple[OperationResult, ...]

    @property
    def foiled_at(self) -> Optional[str]:
        """pFSM that stopped the exploit, if any."""
        return self.trace.foiled_at

    @property
    def hidden_path_count(self) -> int:
        """Total dotted transitions used across all operations."""
        return self.trace.hidden_path_count


class VulnerabilityModel:
    """A named cascade of operations modeling one vulnerability.

    Parameters
    ----------
    name:
        e.g. ``"Sendmail Debugging Function Signed Integer Overflow"``.
    bugtraq_ids:
        The Bugtraq identifiers this model covers (e.g. ``(3163,)``).
    operations:
        The vulnerable operations, in exploitation order.
    gates:
        ``len(operations) - 1`` propagation gates joining them.
    final_consequence:
        What end-to-end success means, e.g. ``"Execute Mcode"``.
    """

    def __init__(
        self,
        name: str,
        operations: Sequence[Operation],
        gates: Sequence[PropagationGate] = (),
        bugtraq_ids: Sequence[int] = (),
        final_consequence: str = "security compromised",
    ) -> None:
        operations = tuple(operations)
        gates = tuple(gates)
        if not operations:
            raise ValueError("a model needs at least one operation")
        if len(gates) != len(operations) - 1:
            raise ValueError(
                f"need {len(operations) - 1} gates for "
                f"{len(operations)} operations, got {len(gates)}"
            )
        names = [op.name for op in operations]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate operation names: {names}")
        self.name = name
        self.operations = operations
        self.gates = gates
        self.bugtraq_ids = tuple(bugtraq_ids)
        self.final_consequence = final_consequence

    # -- lookup -----------------------------------------------------------

    def operation(self, name: str) -> Operation:
        """Find an operation by name."""
        for op in self.operations:
            if op.name == name:
                return op
        raise KeyError(f"no operation named {name!r} in model {self.name!r}")

    def all_pfsms(self) -> List[Tuple[Operation, PrimitiveFSM]]:
        """Every (operation, pFSM) pair in cascade order."""
        return [(op, pfsm) for op in self.operations for pfsm in op.pfsms]

    @property
    def pfsm_count(self) -> int:
        """Total number of elementary activities modeled."""
        return sum(len(op.pfsms) for op in self.operations)

    # -- execution ----------------------------------------------------------

    def run(self, initial_object: Any) -> ModelResult:
        """Traverse the cascade with ``initial_object`` as the first
        operation's input; gates carry state across operations.

        With telemetry enabled the traversal is wrapped in a
        ``model.run`` span with one ``model.operation`` child per
        operation, and every :class:`ExploitTrace` event is bridged to
        the registry as a ``trace.*`` point event — the same record the
        trace keeps, visible to live sinks.
        """
        with _OBS.span("model.run", model=self.name) as span:
            result = self._traverse(initial_object)
            span.set(compromised=result.compromised,
                     hidden=result.hidden_path_count)
        if _OBS.enabled:
            _OBS.incr("model.runs")
            _OBS.incr("model.hidden_transitions", result.hidden_path_count)
            if result.compromised:
                _OBS.incr("model.compromised")
        return result

    def _record(self, trace: ExploitTrace, kind: EventKind, subject: str,
                detail: str = "", outcome: Any = None) -> None:
        """Append to the trace and mirror the event to the registry."""
        trace.record(kind, subject, detail=detail, outcome=outcome)
        if _OBS.enabled:
            attrs = {"model": self.name, "subject": subject}
            if detail:
                attrs["detail"] = detail
            if outcome is not None:
                attrs["hidden"] = outcome.via_hidden_path
                attrs["accepted"] = outcome.accepted
            _OBS.event(f"trace.{kind.name.lower()}", **attrs)

    def _traverse(self, initial_object: Any) -> ModelResult:
        trace = ExploitTrace(model_name=self.name)
        results: List[OperationResult] = []
        current = initial_object
        for index, operation in enumerate(self.operations):
            with _OBS.span("model.operation", model=self.name,
                           operation=operation.name) as op_span:
                self._record(trace, EventKind.OPERATION_START, operation.name,
                             detail=f"object: {operation.object_description}")
                result = operation.run(current)
                results.append(result)
                for outcome in result.outcomes:
                    self._record(trace, EventKind.PFSM_STEP,
                                 outcome.pfsm_name, outcome=outcome)
                op_span.set(completed=result.completed)
            if not result.completed:
                self._record(trace, EventKind.OPERATION_FOILED,
                             result.foiled_by or "?",
                             detail=f"in operation {operation.name!r}")
                self._record(trace, EventKind.EXPLOIT_FOILED, self.name)
                return ModelResult(self.name, False, trace, tuple(results))
            self._record(trace, EventKind.OPERATION_COMPLETE, operation.name)
            if index < len(self.gates):
                gate = self.gates[index]
                current = gate.carry(result)
                self._record(trace, EventKind.GATE_CROSSED, gate.description)
        self._record(trace, EventKind.EXPLOIT_SUCCEEDED, self.name,
                     detail=self.final_consequence)
        return ModelResult(self.name, True, trace, tuple(results))

    def is_compromised_by(self, initial_object: Any) -> bool:
        """Convenience: does this input drive the exploit end to end
        *through at least one hidden path*?  (A benign input completing
        every operation without hidden paths is correct behaviour, not a
        compromise.)"""
        result = self.run(initial_object)
        return result.compromised and result.hidden_path_count > 0

    # -- securing -----------------------------------------------------------------

    def with_pfsm_secured(self, operation_name: str, pfsm_name: str
                          ) -> "VulnerabilityModel":
        """Copy of the model with one elementary activity's check fixed."""
        new_ops = tuple(
            op.with_pfsm_secured(pfsm_name) if op.name == operation_name else op
            for op in self.operations
        )
        return VulnerabilityModel(
            self.name, new_ops, self.gates, self.bugtraq_ids,
            self.final_consequence,
        )

    def with_operation_secured(self, operation_name: str) -> "VulnerabilityModel":
        """Copy with every pFSM of one operation secured — the Lemma
        part 2 hypothesis."""
        if operation_name not in {op.name for op in self.operations}:
            raise KeyError(f"no operation named {operation_name!r}")
        new_ops = tuple(
            op.fully_secured() if op.name == operation_name else op
            for op in self.operations
        )
        return VulnerabilityModel(
            self.name, new_ops, self.gates, self.bugtraq_ids,
            self.final_consequence,
        )

    def fully_secured(self) -> "VulnerabilityModel":
        """Copy with every pFSM in every operation secured."""
        return VulnerabilityModel(
            self.name,
            tuple(op.fully_secured() for op in self.operations),
            self.gates,
            self.bugtraq_ids,
            self.final_consequence,
        )

    def describe(self) -> str:
        """Multi-line structural summary."""
        ids = ", ".join(f"#{i}" for i in self.bugtraq_ids) or "n/a"
        lines = [f"Model: {self.name} (Bugtraq {ids})"]
        for index, op in enumerate(self.operations):
            lines.append(op.describe())
            if index < len(self.gates):
                lines.append(f"  ▷ gate: {self.gates[index].description}")
        lines.append(f"  consequence: {self.final_consequence}")
        return "\n".join(lines)
