"""Quantitative security metrics over pFSM models.

The paper's related-work section surveys stochastic models (Ortalo's
METF Markov model [17], Madan's semi-Markov intrusion tolerance [20])
and notes they "require that parameters, e.g., probabilities of
transitions ... be available or estimated."  A pFSM model makes those
parameters *derivable*: given a distribution over the input domain, the
probability of each Figure 2 transition is just the measure of the
objects taking it.

This module computes, for a model and a weighted domain:

* per-pFSM transition probabilities (SPEC_ACPT / IMPL_REJ / hidden
  IMPL_ACPT),
* the end-to-end compromise probability (an input drives the exploit
  through every operation),
* exposure ratios (what fraction of spec-rejected inputs leak through),
* and the **mean effort to foil** — the expected number of
  single-activity fixes an engineer applies (in a given priority order)
  before the model stops being compromisable by the domain, a concrete
  analogue of [17]'s mean-effort-to-failure framing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Optional, Sequence, Tuple

from .machine import VulnerabilityModel
from .pfsm import PrimitiveFSM
from .witness import Domain

__all__ = [
    "WeightedDomain",
    "PfsmRates",
    "pfsm_rates",
    "compromise_probability",
    "exposure_ratio",
    "mean_effort_to_foil",
    "ModelMetrics",
    "evaluate_model",
]


class WeightedDomain:
    """A finite input distribution: objects with non-negative weights.

    Uniform over a plain :class:`Domain` by default.
    """

    def __init__(self, items: Iterable[Tuple[Any, float]]) -> None:
        self._items = [(obj, float(w)) for obj, w in items]
        total = sum(w for _obj, w in self._items)
        if total <= 0:
            raise ValueError("total weight must be positive")
        self._total = total

    @staticmethod
    def uniform(domain: Domain) -> "WeightedDomain":
        """Equal weight on every domain element."""
        return WeightedDomain((obj, 1.0) for obj in domain)

    def __iter__(self):
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def probability(self, event: Callable[[Any], bool]) -> float:
        """Measure of the objects satisfying ``event``."""
        hit = sum(w for obj, w in self._items if event(obj))
        return hit / self._total


@dataclass(frozen=True)
class PfsmRates:
    """Transition probabilities of one pFSM under a distribution."""

    pfsm_name: str
    spec_accept: float
    impl_reject: float
    hidden_accept: float

    @property
    def total(self) -> float:
        """Sanity: the three outcomes partition the distribution."""
        return self.spec_accept + self.impl_reject + self.hidden_accept


def pfsm_rates(pfsm: PrimitiveFSM, inputs: WeightedDomain) -> PfsmRates:
    """Probability of each Figure 2 outcome for one pFSM."""
    spec_accept = inputs.probability(pfsm.spec_accepts.evaluate)
    hidden = inputs.probability(pfsm.takes_hidden_path)
    reject = 1.0 - spec_accept - hidden
    return PfsmRates(
        pfsm_name=pfsm.name,
        spec_accept=spec_accept,
        impl_reject=max(reject, 0.0),
        hidden_accept=hidden,
    )


def compromise_probability(
    model: VulnerabilityModel, inputs: WeightedDomain
) -> float:
    """Measure of inputs that drive the exploit end to end through at
    least one hidden path."""
    return inputs.probability(model.is_compromised_by)


def exposure_ratio(pfsm: PrimitiveFSM, inputs: WeightedDomain) -> float:
    """Of the inputs the *spec* rejects, the fraction the implementation
    lets through — 1.0 means the check is entirely missing, 0.0 means
    it is complete."""
    rejected = inputs.probability(
        lambda obj: not pfsm.spec_accepts.evaluate(obj)
    )
    if rejected == 0:
        return 0.0
    leaked = inputs.probability(pfsm.takes_hidden_path)
    return leaked / rejected


def mean_effort_to_foil(
    model: VulnerabilityModel,
    inputs: WeightedDomain,
    fix_order: Optional[Sequence[Tuple[str, str]]] = None,
) -> int:
    """Number of single-activity fixes, applied in ``fix_order``
    (default: cascade order), until no input in the distribution
    compromises the model.  Returns the count; 0 when the model is
    already safe for the distribution.

    The deterministic analogue of mean effort to (security) failure:
    with fixes applied in the engineer's priority order, how many are
    needed before the attacker's input distribution is fully foiled.
    """
    order = list(fix_order) if fix_order is not None else [
        (operation.name, pfsm.name) for operation, pfsm in model.all_pfsms()
    ]
    current = model
    effort = 0
    if compromise_probability(current, inputs) == 0.0:
        return 0
    for operation_name, pfsm_name in order:
        current = current.with_pfsm_secured(operation_name, pfsm_name)
        effort += 1
        if compromise_probability(current, inputs) == 0.0:
            return effort
    raise ValueError(
        "fix order exhausted but the model is still compromisable"
    )


@dataclass
class ModelMetrics:
    """Aggregated quantitative evaluation of one model."""

    model_name: str
    per_pfsm: Dict[str, PfsmRates]
    per_pfsm_exposure: Dict[str, float]
    compromise_probability: float
    effort_to_foil: int

    def to_text(self) -> str:
        """Readable summary."""
        lines = [f"metrics for {self.model_name}"]
        for name, rates in self.per_pfsm.items():
            lines.append(
                f"  {name}: spec-accept={rates.spec_accept:.2f} "
                f"impl-reject={rates.impl_reject:.2f} "
                f"hidden={rates.hidden_accept:.2f} "
                f"exposure={self.per_pfsm_exposure[name]:.2f}"
            )
        lines.append(
            f"  P(compromise) = {self.compromise_probability:.3f}; "
            f"fixes to foil (cascade order) = {self.effort_to_foil}"
        )
        return "\n".join(lines)


def evaluate_model(
    model: VulnerabilityModel,
    model_inputs: WeightedDomain,
    pfsm_inputs: Dict[str, WeightedDomain],
) -> ModelMetrics:
    """Compute the full metric set.

    ``model_inputs`` feeds the end-to-end probability and effort;
    ``pfsm_inputs`` supplies each pFSM's own object distribution (the
    objects later activities see are transforms/gate products, so they
    need their own domains).
    """
    per_pfsm: Dict[str, PfsmRates] = {}
    exposure: Dict[str, float] = {}
    for _operation, pfsm in model.all_pfsms():
        inputs = pfsm_inputs.get(pfsm.name)
        if inputs is None:
            continue
        per_pfsm[pfsm.name] = pfsm_rates(pfsm, inputs)
        exposure[pfsm.name] = exposure_ratio(pfsm, inputs)
    probability = compromise_probability(model, model_inputs)
    effort = mean_effort_to_foil(model, model_inputs) if probability else 0
    return ModelMetrics(
        model_name=model.name,
        per_pfsm=per_pfsm,
        per_pfsm_exposure=exposure,
        compromise_probability=probability,
        effort_to_foil=effort,
    )
