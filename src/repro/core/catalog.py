"""A catalog of reusable security predicates.

The paper's conclusion points at "the security predicates specific to
different software ... in addition to the generic predicates discussed
in this paper (e.g., buffer boundary and array index checks)" and hopes
a comprehensive catalog "will enable us to build an automatic tool for
the vulnerability analysis."  This module is that catalog: each entry
packages a parametrised predicate constructor, its generic pFSM type,
the elementary-activity archetype it usually guards, and a default
probe domain generator — everything the automatic analyzer
(:mod:`repro.core.autotool`) needs to try it against an implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List

from .classification import ActivityKind, PfsmType
from .predicates import Predicate
from .witness import Domain

__all__ = ["CatalogEntry", "PREDICATE_CATALOG", "entries_for_activity"]


@dataclass(frozen=True)
class CatalogEntry:
    """One reusable predicate pattern."""

    key: str
    summary: str
    check_type: PfsmType
    usual_activity: ActivityKind
    build: Callable[..., Predicate]
    default_domain: Callable[..., Domain]

    def instantiate(self, **params: Any) -> Predicate:
        """Build the predicate with concrete parameters."""
        return self.build(**params)


def _non_negative() -> Predicate:
    return Predicate(lambda n: int(n) >= 0, "value >= 0")


def _int_range(low: int, high: int) -> Predicate:
    return Predicate(lambda n: low <= int(n) <= high,
                     f"{low} <= value <= {high}")


def _fits_int32() -> Predicate:
    return Predicate(
        lambda s: -(2**31) <= int(s) <= 2**31 - 1,
        "string represents a 32-bit integer",
    )


def _length_bound(limit: int) -> Predicate:
    return Predicate(lambda obj: len(obj) <= limit, f"length <= {limit}")


def _no_substring(needle: Any) -> Predicate:
    return Predicate(lambda obj: needle not in obj,
                     f"does not contain {needle!r}")


def _no_format_directives() -> Predicate:
    from ..memory import contains_directives

    return Predicate(
        lambda obj: not contains_directives(
            obj if isinstance(obj, bytes) else str(obj).encode("latin-1")
        ),
        "contains no format directives (%n, %x, %d, ...)",
    )


def _no_traversal_after_decoding(decoder: Callable[[str], str],
                                 rounds: int = 8) -> Predicate:
    def safe(path: str) -> bool:
        current = path
        for _round in range(rounds):
            decoded = decoder(current)
            if decoded == current:
                break
            current = decoded
        return "../" not in current and not current.startswith("/")

    return Predicate(safe, "fully decoded path stays inside the root")


def _reference_unchanged(key: str = "unchanged") -> Predicate:
    def check(obj: Any) -> bool:
        if isinstance(obj, dict):
            return bool(obj[key])
        return bool(obj)

    return Predicate(check, "reference binding unchanged since check time")


PREDICATE_CATALOG: Dict[str, CatalogEntry] = {
    entry.key: entry
    for entry in [
        CatalogEntry(
            key="non-negative",
            summary="sizes/lengths/counts must not be negative "
                    "(NULL HTTPD contentLen)",
            check_type=PfsmType.CONTENT_ATTRIBUTE,
            usual_activity=ActivityKind.GET_INPUT,
            build=lambda: _non_negative(),
            default_domain=lambda: Domain.integer_probes(),
        ),
        CatalogEntry(
            key="int-range",
            summary="array index within declared bounds (Sendmail tTvect)",
            check_type=PfsmType.CONTENT_ATTRIBUTE,
            usual_activity=ActivityKind.USE_AS_INDEX,
            build=lambda low=0, high=100: _int_range(low, high),
            default_domain=lambda: Domain.integer_probes(),
        ),
        CatalogEntry(
            key="fits-int32",
            summary="decimal string representable without wrapping "
                    "(Table 1's type check)",
            check_type=PfsmType.OBJECT_TYPE,
            usual_activity=ActivityKind.GET_INPUT,
            build=lambda: _fits_int32(),
            default_domain=lambda: Domain.integer_strings(),
        ),
        CatalogEntry(
            key="length-bound",
            summary="input length bounded by the destination buffer "
                    "(GHTTPD 200 bytes)",
            check_type=PfsmType.CONTENT_ATTRIBUTE,
            usual_activity=ActivityKind.COPY_TO_BUFFER,
            build=lambda limit=200: _length_bound(limit),
            default_domain=lambda limit=200: Domain.byte_strings(
                [0, 1, limit - 1, limit, limit + 1, 2 * limit]
            ),
        ),
        CatalogEntry(
            key="no-substring",
            summary="content must not contain a dangerous token "
                    "(IIS '../')",
            check_type=PfsmType.CONTENT_ATTRIBUTE,
            usual_activity=ActivityKind.GET_INPUT,
            build=lambda needle="../": _no_substring(needle),
            default_domain=lambda: Domain.of(
                "a/b", "../x", "..%2fx", "..%252fx"
            ),
        ),
        CatalogEntry(
            key="no-format-directives",
            summary="user input carries no printf conversions "
                    "(rpc.statd filenames)",
            check_type=PfsmType.CONTENT_ATTRIBUTE,
            usual_activity=ActivityKind.GET_INPUT,
            build=lambda: _no_format_directives(),
            default_domain=lambda: Domain.of(
                b"host", b"%n", b"%x%x", b"100%%"
            ),
        ),
        CatalogEntry(
            key="decoded-path-inside-root",
            summary="path stays inside the served root after decoding "
                    "reaches a fixed point (the IIS spec)",
            check_type=PfsmType.CONTENT_ATTRIBUTE,
            usual_activity=ActivityKind.GET_INPUT,
            build=_no_traversal_after_decoding,
            default_domain=lambda: Domain.of(
                "a/b.exe", "../c.exe", "..%2fc.exe", "..%252fc.exe"
            ),
        ),
        CatalogEntry(
            key="reference-unchanged",
            summary="object-to-reference binding preserved from check "
                    "to use (return address, GOT entry, free links, path)",
            check_type=PfsmType.REFERENCE_CONSISTENCY,
            usual_activity=ActivityKind.CHECK_THEN_USE,
            build=lambda key="unchanged": _reference_unchanged(key),
            default_domain=lambda key="unchanged": Domain.of(
                {key: True}, {key: False}
            ),
        ),
    ]
}


def entries_for_activity(activity: ActivityKind) -> List[CatalogEntry]:
    """Catalog entries whose usual activity matches."""
    return [
        entry
        for entry in PREDICATE_CATALOG.values()
        if entry.usual_activity is activity
    ]
