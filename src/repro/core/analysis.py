"""Model analysis: hidden paths, foil sets, and the paper's Lemma.

The stated goal of the FSM model (Section 4) is "to reason whether the
implemented operation, or more precisely each elementary activity within
the operation, satisfies the derived predicate."  This module provides
that reasoning over executable models:

* :func:`hidden_path_report` — per-pFSM witness search: which elementary
  activities admit spec-rejected-but-impl-accepted objects.
* :func:`minimal_foil_points` — which *single* elementary-activity fix
  forecloses a given end-to-end exploit (Observation 1's "at any one of
  which, one can foil the exploit").
* :func:`check_lemma_part1` / :func:`check_lemma_part2` — the Section 6
  Lemma as executable properties:

  1. securing an operation requires every constituent predicate to be
     correctly implemented;
  2. to foil an exploit chain it is sufficient to secure any one
     operation in the sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .machine import VulnerabilityModel
from .operation import Operation
from .pfsm import PrimitiveFSM
from .sweep import sweep_model
from .witness import Domain

__all__ = [
    "HiddenPathFinding",
    "hidden_path_report",
    "FoilPoint",
    "minimal_foil_points",
    "minimal_witness",
    "check_lemma_part1",
    "check_lemma_part2",
    "LemmaReport",
    "verify_lemma",
]


@dataclass(frozen=True)
class HiddenPathFinding:
    """A pFSM with at least one hidden-path witness."""

    operation_name: str
    pfsm_name: str
    activity: str
    witnesses: Tuple[Any, ...]

    def __str__(self) -> str:
        sample = self.witnesses[0] if self.witnesses else None
        return (
            f"{self.operation_name}/{self.pfsm_name} ({self.activity}): "
            f"hidden path, e.g. {sample!r}"
        )


def hidden_path_report(
    model: VulnerabilityModel,
    domains: Dict[str, Domain],
    limit: int = 5,
    workers: Optional[int] = None,
    cache: Any = None,
) -> List[HiddenPathFinding]:
    """Search each pFSM's object domain for hidden-path witnesses.

    ``domains`` maps pFSM names to candidate-object domains.  pFSMs
    without a domain entry are skipped (their objects may not be
    enumerable, e.g. raw memory states).

    Delegates to :func:`repro.core.sweep.sweep_model`: per-pFSM scans
    take the closed-form batch path where available, share the sweep
    predicate cache (``cache=None`` selects the process-wide one,
    :data:`repro.core.sweep.NO_CACHE` disables it), and fan out across
    ``workers`` threads with deterministic result order.
    """
    sweep = sweep_model(
        model, domains, limit=limit, workers=workers, cache=cache,
    )
    return [
        HiddenPathFinding(
            operation_name=finding.operation_name,
            pfsm_name=finding.pfsm_name,
            activity=finding.activity,
            witnesses=finding.witnesses,
        )
        for finding in sweep.findings
    ]


@dataclass(frozen=True)
class FoilPoint:
    """A single elementary activity whose fix forecloses the exploit."""

    operation_name: str
    pfsm_name: str
    activity: str

    def __str__(self) -> str:
        return f"secure {self.pfsm_name} in {self.operation_name!r} ({self.activity})"


def minimal_foil_points(
    model: VulnerabilityModel, exploit_input: Any, exhaustive: bool = False
) -> List[FoilPoint]:
    """Every single-pFSM fix that stops ``exploit_input`` end to end.

    Observation 1 predicts a non-empty result for every real exploit:
    each elementary activity it passes through is an independent foiling
    opportunity.

    Default strategy: run the exploit *once* and read the foil points
    off the trace.  The model cascade is deterministic and securing a
    pFSM only flips its hidden IMPL_ACPT transition to IMPL_REJ, so
    securing changes the outcome exactly when the original run rode that
    pFSM's hidden path — no per-pFSM model copy or re-execution needed.
    ``exhaustive=True`` keeps the seed's brute-force check (secure each
    pFSM in turn, re-run end to end); both strategies agree and the
    equivalence is pinned by tests.
    """
    if exhaustive:
        if not model.is_compromised_by(exploit_input):
            return []
        points: List[FoilPoint] = []
        for operation, pfsm in model.all_pfsms():
            hardened = model.with_pfsm_secured(operation.name, pfsm.name)
            if not hardened.is_compromised_by(exploit_input):
                points.append(
                    FoilPoint(
                        operation_name=operation.name,
                        pfsm_name=pfsm.name,
                        activity=pfsm.activity,
                    )
                )
        return points
    result = model.run(exploit_input)
    if not (result.compromised and result.hidden_path_count > 0):
        return []
    hidden: set = set()
    for op_result in result.operation_results:
        for outcome in op_result.outcomes:
            if outcome.via_hidden_path:
                hidden.add((op_result.operation_name, outcome.pfsm_name))
    return [
        FoilPoint(
            operation_name=operation.name,
            pfsm_name=pfsm.name,
            activity=pfsm.activity,
        )
        for operation, pfsm in model.all_pfsms()
        if (operation.name, pfsm.name) in hidden
    ]


def check_lemma_part1(operation: Operation, domain: Domain) -> bool:
    """Lemma part 1: an operation is secure over a domain *iff* all its
    constituent predicates are correctly implemented along the reachable
    chain.

    Checks both directions constructively: the fully-secured copy admits
    no hidden path, and conversely if the original operation has a
    hidden-path traversal then some pFSM must be divergent.
    """
    fully_secured = operation.fully_secured()
    if not fully_secured.is_secure(domain):
        return False
    # Converse: a hidden-path traversal implies a divergent pFSM.
    for obj in domain:
        result = operation.run(obj)
        if result.used_hidden_path:
            divergent = [
                outcome.pfsm_name
                for outcome in result.outcomes
                if outcome.via_hidden_path
            ]
            if not divergent:
                return False
    return True


def check_lemma_part2(model: VulnerabilityModel, exploit_input: Any) -> bool:
    """Lemma part 2: securing any *one* operation of the chain foils the
    exploit.

    Vacuously true when the input does not compromise the model.
    """
    if not model.is_compromised_by(exploit_input):
        return True
    for operation in model.operations:
        hardened = model.with_operation_secured(operation.name)
        if hardened.is_compromised_by(exploit_input):
            return False
    return True


@dataclass
class LemmaReport:
    """Aggregate Lemma verification over a model."""

    model_name: str
    part1_results: Dict[str, bool] = field(default_factory=dict)
    part2_result: Optional[bool] = None
    foil_points: List[FoilPoint] = field(default_factory=list)

    @property
    def holds(self) -> bool:
        """True when every checked part holds."""
        parts = list(self.part1_results.values())
        if self.part2_result is not None:
            parts.append(self.part2_result)
        return all(parts) if parts else False


def verify_lemma(
    model: VulnerabilityModel,
    operation_domains: Dict[str, Domain],
    exploit_input: Any,
) -> LemmaReport:
    """Run both Lemma parts over a model and collect foil points.

    ``operation_domains`` maps operation names to input domains for the
    part 1 check.
    """
    report = LemmaReport(model_name=model.name)
    for operation in model.operations:
        domain = operation_domains.get(operation.name)
        if domain is not None:
            report.part1_results[operation.name] = check_lemma_part1(
                operation, domain
            )
    report.part2_result = check_lemma_part2(model, exploit_input)
    report.foil_points = minimal_foil_points(model, exploit_input)
    return report


def minimal_witness(
    pfsm: PrimitiveFSM,
    domain: Domain,
    key=None,
):
    """The *smallest* hidden-path witness in a domain, or None.

    Bug reports read best with minimal reproducers (the paper quotes
    ``contentLen = -800``, not an arbitrary huge negative).  ``key``
    ranks candidates; the default prefers structurally small objects:
    shortest textual form, then the text itself as a tiebreaker.
    """
    if key is None:
        def key(obj):  # noqa: ANN001 - generic object ranking
            text = repr(obj)
            return (len(text), text)

    best = None
    best_rank = None
    for candidate in domain:
        if not pfsm.takes_hidden_path(candidate):
            continue
        rank = key(candidate)
        if best_rank is None or rank < best_rank:
            best, best_rank = candidate, rank
    return best
