"""The primitive FSM (pFSM) — the paper's unit of vulnerability modeling.

A pFSM represents "a predicate for accepting an input object with respect
to the specification and implementation" (Section 4).  It is defined by
two predicates over the same object domain:

* ``spec_accepts`` — what the *specification* says should be accepted;
* ``impl_accepts`` — what the *implementation* actually accepts.

From these the four Figure 2 transitions are derived per object:

=====================  =============================================
object satisfies        path through the pFSM
=====================  =============================================
spec accepts            SPEC_ACPT → accept state (secure acceptance)
spec rejects,           SPEC_REJ → reject state, IMPL_REJ →
impl rejects            stays rejected (exploit foiled)
spec rejects,           SPEC_REJ → reject state, IMPL_ACPT (hidden,
impl accepts            dotted) → accept state  **← the vulnerability**
=====================  =============================================

A pFSM *has a hidden path* over a domain when some object in the domain
takes the third row.  Securing a pFSM means replacing its implementation
predicate with the specification predicate, which removes the hidden
path — the elementary security-check opportunity of Observation 1.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, Iterable, List, Optional, Tuple

from .classification import PfsmType
from .predicates import Predicate
from .sweep import NO_CACHE, hidden_witness_scan
from .transitions import Label, StateKind, Transition, TransitionKind

__all__ = ["PrimitiveFSM", "PfsmOutcome"]


@dataclass(frozen=True)
class PfsmOutcome:
    """Result of stepping one object through a pFSM."""

    pfsm_name: str
    obj: Any
    accepted: bool
    via_hidden_path: bool
    states: Tuple[StateKind, ...]
    transitions: Tuple[TransitionKind, ...]
    transformed: Any = None

    @property
    def foiled(self) -> bool:
        """True when the object ended in the reject state — the exploit
        (if this object was malicious) was foiled at this activity."""
        return not self.accepted


@dataclass(frozen=True)
class PrimitiveFSM:
    """One elementary activity as a primitive FSM.

    Parameters
    ----------
    name:
        Short identifier, e.g. ``"pFSM1"``.
    activity:
        The elementary activity modeled, e.g. ``"get text strings str_x
        and str_i; convert to integers"``.
    object_name:
        The object the predicate ranges over, e.g. ``"str_x"``.
    spec_accepts:
        The specification's accept predicate.
    impl_accepts:
        What the implementation actually accepts.  ``None`` means the
        implementation performs *no check at all* (IMPL_REJ absent,
        everything spec-rejected flows through the hidden path) — the
        paper's ``IMPL_ACPT = -♦-`` notation.
    accept_action:
        Description of the action taken on acceptance (the label's
        right-hand side), e.g. ``"tTvect[x] = i"``.
    transform:
        Optional function applied to accepted objects before they reach
        the next activity (e.g. string-to-integer conversion).
    check_type:
        The generic pFSM type (Figure 8) this predicate instantiates.
    """

    name: str
    activity: str
    object_name: str
    spec_accepts: Predicate
    impl_accepts: Optional[Predicate] = None
    accept_action: str = ""
    transform: Optional[Callable[[Any], Any]] = None
    check_type: Optional[PfsmType] = None

    # -- derived predicates ----------------------------------------------

    def implementation_accepts(self, obj: Any) -> bool:
        """Does the implementation let ``obj`` through?  A missing check
        accepts everything."""
        if self.impl_accepts is None:
            return True
        return self.impl_accepts.evaluate(obj)

    def takes_hidden_path(self, obj: Any) -> bool:
        """True when ``obj`` is spec-rejected but impl-accepted — the
        dotted IMPL_ACPT transition of Figure 2."""
        return not self.spec_accepts.evaluate(obj) and self.implementation_accepts(obj)

    @property
    def has_check(self) -> bool:
        """False when the implementation performs no check at all."""
        return self.impl_accepts is not None

    # -- stepping ------------------------------------------------------------

    def step(self, obj: Any) -> PfsmOutcome:
        """Run one object through the three states of Figure 2."""
        states: List[StateKind] = [StateKind.SPEC_CHECK]
        transitions: List[TransitionKind] = []
        if self.spec_accepts.evaluate(obj):
            transitions.append(TransitionKind.SPEC_ACPT)
            states.append(StateKind.ACCEPT)
            accepted, hidden = True, False
        else:
            transitions.append(TransitionKind.SPEC_REJ)
            states.append(StateKind.REJECT)
            if self.implementation_accepts(obj):
                transitions.append(TransitionKind.IMPL_ACPT)
                states.append(StateKind.ACCEPT)
                accepted, hidden = True, True
            else:
                transitions.append(TransitionKind.IMPL_REJ)
                accepted, hidden = False, False
        transformed = obj
        if accepted and self.transform is not None:
            transformed = self.transform(obj)
        return PfsmOutcome(
            pfsm_name=self.name,
            obj=obj,
            accepted=accepted,
            via_hidden_path=hidden,
            states=tuple(states),
            transitions=tuple(transitions),
            transformed=transformed,
        )

    # -- hidden-path analysis --------------------------------------------------

    def hidden_witnesses(self, domain: Iterable[Any], limit: int = 10,
                         cache: Any = None) -> List[Any]:
        """Objects in ``domain`` that traverse the hidden path.

        Routed through :func:`repro.core.sweep.hidden_witness_scan`:
        closed-form predicates over ``range``-backed domains answer
        arithmetically (O(limit), not O(n)); pass a
        :class:`~repro.core.sweep.PredicateCache` to memoize scalar
        scans across repeated sweeps.  Witness order always matches
        domain iteration order.
        """
        return hidden_witness_scan(
            self, domain, limit=limit,
            cache=NO_CACHE if cache is None else cache,
        )

    def has_hidden_path(self, domain: Iterable[Any]) -> bool:
        """True when some domain object is spec-rejected but
        impl-accepted — the existence of the vulnerability at this
        elementary activity."""
        return bool(self.hidden_witnesses(domain, limit=1))

    def is_secure(self, domain: Iterable[Any]) -> bool:
        """The Lemma's per-pFSM condition: no hidden path over the
        domain, i.e. the predicate is correctly implemented."""
        return not self.has_hidden_path(domain)

    # -- securing (injecting the missing check) -----------------------------------

    def secured(self) -> "PrimitiveFSM":
        """A copy whose implementation enforces the specification —
        the fix the paper prescribes for this elementary activity."""
        return replace(self, impl_accepts=self.spec_accepts)

    def with_impl(self, impl: Optional[Predicate]) -> "PrimitiveFSM":
        """A copy with a different implementation predicate (used by
        defense-injection studies)."""
        return replace(self, impl_accepts=impl)

    # -- structure (for rendering and classification) -------------------------------

    def transitions_spec(self) -> List[Transition]:
        """The four Figure 2 transitions with their labels, marking the
        missing IMPL_REJ ('?') and the hidden IMPL_ACPT (dotted) where
        the implementation diverges from the specification."""
        spec = self.spec_accepts.description
        neg_spec = f"not ({spec})"
        impl_desc = (
            self.impl_accepts.description if self.impl_accepts is not None else ""
        )
        impl_rejects_correctly = self.has_check
        return [
            Transition(
                TransitionKind.SPEC_ACPT,
                Label(condition=spec, action=self.accept_action),
            ),
            Transition(TransitionKind.SPEC_REJ, Label(condition=neg_spec)),
            Transition(
                TransitionKind.IMPL_REJ,
                Label(condition=f"not ({impl_desc})" if impl_desc else ""),
                exists=impl_rejects_correctly,
            ),
            Transition(
                TransitionKind.IMPL_ACPT,
                Label(condition=impl_desc),
            ),
        ]

    def describe(self) -> str:
        """One-line summary used in traces and reports."""
        impl = (
            self.impl_accepts.description
            if self.impl_accepts is not None
            else "(no check)"
        )
        return (
            f"{self.name} [{self.activity}] object={self.object_name} "
            f"spec: {self.spec_accepts.description} | impl: {impl}"
        )
