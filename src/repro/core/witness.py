"""Object domains for witness search.

Hidden-path analysis (does a pFSM accept something its spec rejects?) is
an existence question over the object domain of the elementary activity.
The paper answers it by code inspection; we answer it constructively by
enumerating or sampling a :class:`Domain` and exhibiting witnesses.

Domains are finite, iterable, composable, and deterministic — property
tests and benchmarks need reproducibility, so samplers take explicit
seeds.

Domains are also *lazy where laziness is free*: integer domains keep
their ``range`` backing unmaterialized (so the closed-form batch paths
in :mod:`repro.core.predicates` can answer witness queries
arithmetically), and :meth:`Domain.records` holds a re-iterable
Cartesian product instead of the full list of dicts — O(∑|fields|)
memory instead of O(∏|fields|) before any predicate runs.
"""

from __future__ import annotations

import itertools
import random
import string
from typing import Any, Callable, Iterable, Iterator, List, Optional, Sequence, Set

from ..obs import DEFAULT as _OBS

__all__ = ["Domain"]


class _LazyProduct:
    """Re-iterable Cartesian product of named field values, yielding one
    dict per combination without ever materializing the full product."""

    def __init__(self, names: Sequence[str], columns: Sequence[List[Any]]) -> None:
        self._names = tuple(names)
        self._columns = [list(column) for column in columns]

    def __iter__(self) -> Iterator[dict]:
        names = self._names
        for combo in itertools.product(*self._columns):
            yield dict(zip(names, combo))

    def __len__(self) -> int:
        size = 1
        for column in self._columns:
            size *= len(column)
        return size


class Domain:
    """A finite, re-iterable collection of candidate objects."""

    def __init__(self, items: Iterable[Any], description: str = "") -> None:
        if isinstance(items, (range, tuple, _LazyProduct)):
            self._items = items  # already re-iterable and sized; keep lazy
        else:
            self._items = list(items)
            if _OBS.enabled:
                _OBS.incr("domain.materialized")
        self.description = description or f"{len(self._items)} objects"
        # Built on first membership query: hashable items go in a set
        # (O(1) lookups), the unhashable remainder in a list.
        self._member_set: Optional[Set[Any]] = None
        self._member_rest: Optional[List[Any]] = None

    @property
    def backing(self) -> Any:
        """The raw container behind the domain (``range`` for integer
        domains — the hook the closed-form predicate paths key on)."""
        return self._items

    def __iter__(self) -> Iterator[Any]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, obj: Any) -> bool:
        items = self._items
        if isinstance(items, range):
            try:
                return obj in items  # O(1) arithmetic membership
            except TypeError:
                return False
        if isinstance(items, _LazyProduct):
            # Do not materialize giant products for one lookup.
            if _OBS.enabled:
                _OBS.incr("domain.membership.scans")
            return any(item == obj for item in items)
        if self._member_set is None:
            member_set: Set[Any] = set()
            member_rest: List[Any] = []
            for item in items:
                try:
                    member_set.add(item)
                except TypeError:
                    member_rest.append(item)
            self._member_set = member_set
            self._member_rest = member_rest
            if _OBS.enabled:
                _OBS.incr("domain.membership.index_built")
        try:
            if obj in self._member_set:
                return True
        except TypeError:
            pass
        return obj in self._member_rest

    def __repr__(self) -> str:
        return f"Domain({self.description})"

    # -- constructors ------------------------------------------------------

    @staticmethod
    def of(*items: Any) -> "Domain":
        """Domain from explicit items."""
        return Domain(items, description=f"{len(items)} literals")

    @staticmethod
    def integers(low: int, high: int, step: int = 1) -> "Domain":
        """All integers in ``[low, high]`` (kept as a lazy ``range``)."""
        return Domain(range(low, high + 1, step),
                      description=f"integers [{low}, {high}]")

    @staticmethod
    def integer_probes(magnitude: int = 1 << 31) -> "Domain":
        """Boundary-flavoured integer probe set: zeros, small values,
        negatives, and two's-complement edges — the values that expose
        signed-overflow predicates."""
        edges = [
            0, 1, -1, 2, -2, 10, 100, 101, -100, 127, 128, 255, 256,
            1023, 1024, 1025, 32767, 32768, 65535, 65536,
            magnitude - 1, magnitude, magnitude + 1,
            -magnitude, -magnitude - 1, 2 * magnitude - 1, 2 * magnitude,
        ]
        return Domain(sorted(set(edges)), description="integer boundary probes")

    @staticmethod
    def integer_strings(magnitude: int = 1 << 31) -> "Domain":
        """Decimal-string forms of the boundary probes (the raw inputs of
        elementary activity 1 in the signed-integer chains)."""
        return Domain(
            [str(v) for v in Domain.integer_probes(magnitude)],
            description="decimal strings at integer boundaries",
        )

    @staticmethod
    def byte_strings(lengths: Sequence[int], fill: bytes = b"A") -> "Domain":
        """Byte strings of the given lengths (buffer-copy probes)."""
        return Domain(
            [fill * length for length in lengths],
            description=f"byte strings of lengths {list(lengths)}",
        )

    @staticmethod
    def sampled_strings(
        count: int, max_length: int, alphabet: str = string.printable,
        seed: int = 0,
    ) -> "Domain":
        """Deterministically sampled random strings."""
        rng = random.Random(seed)
        items = [
            "".join(rng.choice(alphabet) for _ in range(rng.randint(0, max_length)))
            for _ in range(count)
        ]
        return Domain(items, description=f"{count} sampled strings (seed={seed})")

    # -- combinators -----------------------------------------------------------

    def map(self, fn: Callable[[Any], Any], description: str = "") -> "Domain":
        """Apply ``fn`` to every element."""
        return Domain(
            (fn(item) for item in self._items),
            description=description or f"mapped({self.description})",
        )

    def filter(self, keep: Callable[[Any], bool]) -> "Domain":
        """Keep matching elements."""
        return Domain(
            (item for item in self._items if keep(item)),
            description=f"filtered({self.description})",
        )

    def union(self, other: "Domain") -> "Domain":
        """Concatenate two domains (duplicates preserved)."""
        return Domain(
            itertools.chain(self._items, other),
            description=f"{self.description} + {other.description}",
        )

    @staticmethod
    def records(**fields: "Domain") -> "Domain":
        """Cartesian product of named domains as dicts — multi-attribute
        objects like Figure 3's ``{str_x, str_i}`` pairs.

        The product is lazy and re-iterable with a computed ``len``; only
        the per-field value lists are held in memory.
        """
        names = list(fields)
        product = _LazyProduct(names, [list(fields[name]) for name in names])
        return Domain(
            product,
            description="records(" + ", ".join(
                f"{n}={fields[n].description}" for n in names) + ")",
        )

    def sample(self, count: int, seed: int = 0) -> "Domain":
        """Deterministic subsample (without replacement when possible)."""
        if _OBS.enabled:
            _OBS.incr("domain.sampled")
        rng = random.Random(seed)
        items = (
            self._items
            if isinstance(self._items, (range, list, tuple))
            else list(self._items)
        )
        if count >= len(items):
            return Domain(list(items), description=self.description)
        return Domain(
            rng.sample(items, count),
            description=f"sample({count}) of {self.description}",
        )
