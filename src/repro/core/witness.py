"""Object domains for witness search.

Hidden-path analysis (does a pFSM accept something its spec rejects?) is
an existence question over the object domain of the elementary activity.
The paper answers it by code inspection; we answer it constructively by
enumerating or sampling a :class:`Domain` and exhibiting witnesses.

Domains are finite, iterable, composable, and deterministic — property
tests and benchmarks need reproducibility, so samplers take explicit
seeds.
"""

from __future__ import annotations

import itertools
import random
import string
from typing import Any, Callable, Iterable, Iterator, List, Sequence

__all__ = ["Domain"]


class Domain:
    """A finite, re-iterable collection of candidate objects."""

    def __init__(self, items: Iterable[Any], description: str = "") -> None:
        self._items: List[Any] = list(items)
        self.description = description or f"{len(self._items)} objects"

    def __iter__(self) -> Iterator[Any]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, obj: Any) -> bool:
        return obj in self._items

    def __repr__(self) -> str:
        return f"Domain({self.description})"

    # -- constructors ------------------------------------------------------

    @staticmethod
    def of(*items: Any) -> "Domain":
        """Domain from explicit items."""
        return Domain(items, description=f"{len(items)} literals")

    @staticmethod
    def integers(low: int, high: int, step: int = 1) -> "Domain":
        """All integers in ``[low, high]``."""
        return Domain(range(low, high + 1, step),
                      description=f"integers [{low}, {high}]")

    @staticmethod
    def integer_probes(magnitude: int = 1 << 31) -> "Domain":
        """Boundary-flavoured integer probe set: zeros, small values,
        negatives, and two's-complement edges — the values that expose
        signed-overflow predicates."""
        edges = [
            0, 1, -1, 2, -2, 10, 100, 101, -100, 127, 128, 255, 256,
            1023, 1024, 1025, 32767, 32768, 65535, 65536,
            magnitude - 1, magnitude, magnitude + 1,
            -magnitude, -magnitude - 1, 2 * magnitude - 1, 2 * magnitude,
        ]
        return Domain(sorted(set(edges)), description="integer boundary probes")

    @staticmethod
    def integer_strings(magnitude: int = 1 << 31) -> "Domain":
        """Decimal-string forms of the boundary probes (the raw inputs of
        elementary activity 1 in the signed-integer chains)."""
        return Domain(
            [str(v) for v in Domain.integer_probes(magnitude)],
            description="decimal strings at integer boundaries",
        )

    @staticmethod
    def byte_strings(lengths: Sequence[int], fill: bytes = b"A") -> "Domain":
        """Byte strings of the given lengths (buffer-copy probes)."""
        return Domain(
            [fill * length for length in lengths],
            description=f"byte strings of lengths {list(lengths)}",
        )

    @staticmethod
    def sampled_strings(
        count: int, max_length: int, alphabet: str = string.printable,
        seed: int = 0,
    ) -> "Domain":
        """Deterministically sampled random strings."""
        rng = random.Random(seed)
        items = [
            "".join(rng.choice(alphabet) for _ in range(rng.randint(0, max_length)))
            for _ in range(count)
        ]
        return Domain(items, description=f"{count} sampled strings (seed={seed})")

    # -- combinators -----------------------------------------------------------

    def map(self, fn: Callable[[Any], Any], description: str = "") -> "Domain":
        """Apply ``fn`` to every element."""
        return Domain(
            (fn(item) for item in self._items),
            description=description or f"mapped({self.description})",
        )

    def filter(self, keep: Callable[[Any], bool]) -> "Domain":
        """Keep matching elements."""
        return Domain(
            (item for item in self._items if keep(item)),
            description=f"filtered({self.description})",
        )

    def union(self, other: "Domain") -> "Domain":
        """Concatenate two domains (duplicates preserved)."""
        return Domain(
            itertools.chain(self._items, other),
            description=f"{self.description} + {other.description}",
        )

    @staticmethod
    def records(**fields: "Domain") -> "Domain":
        """Cartesian product of named domains as dicts — multi-attribute
        objects like Figure 3's ``{str_x, str_i}`` pairs."""
        names = list(fields)
        combos = itertools.product(*(list(fields[name]) for name in names))
        items = [dict(zip(names, combo)) for combo in combos]
        return Domain(
            items,
            description="records(" + ", ".join(
                f"{n}={fields[n].description}" for n in names) + ")",
        )

    def sample(self, count: int, seed: int = 0) -> "Domain":
        """Deterministic subsample (without replacement when possible)."""
        rng = random.Random(seed)
        if count >= len(self._items):
            return Domain(list(self._items), description=self.description)
        return Domain(
            rng.sample(self._items, count),
            description=f"sample({count}) of {self.description}",
        )
