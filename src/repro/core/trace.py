"""Exploit traces: the recorded path of an object through a model.

Traversing a :class:`~repro.core.machine.VulnerabilityModel` produces a
trace of every pFSM outcome, operation boundary, and propagation-gate
crossing.  Traces are what benchmarks assert on ("the exploit reached
Mcode via two hidden paths") and what :mod:`repro.core.render` prints.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .pfsm import PfsmOutcome

__all__ = ["EventKind", "TraceEvent", "ExploitTrace"]


class EventKind(enum.Enum):
    """What a trace event records."""

    OPERATION_START = "operation start"
    PFSM_STEP = "pFSM step"
    OPERATION_FOILED = "operation foiled"
    OPERATION_COMPLETE = "operation complete"
    GATE_CROSSED = "propagation gate crossed"
    EXPLOIT_SUCCEEDED = "exploit succeeded"
    EXPLOIT_FOILED = "exploit foiled"


@dataclass(frozen=True)
class TraceEvent:
    """One step of a model traversal."""

    kind: EventKind
    subject: str  # operation/pFSM/gate name
    detail: str = ""
    outcome: Optional[PfsmOutcome] = None


@dataclass
class ExploitTrace:
    """The full record of one model traversal."""

    model_name: str
    events: List[TraceEvent] = field(default_factory=list)

    def record(
        self,
        kind: EventKind,
        subject: str,
        detail: str = "",
        outcome: Optional[PfsmOutcome] = None,
    ) -> None:
        """Append an event."""
        self.events.append(TraceEvent(kind, subject, detail, outcome))

    # -- queries ---------------------------------------------------------

    @property
    def succeeded(self) -> bool:
        """Did the exploit reach the end of the model?"""
        return any(e.kind is EventKind.EXPLOIT_SUCCEEDED for e in self.events)

    @property
    def foiled_at(self) -> Optional[str]:
        """Name of the pFSM whose reject foiled the exploit, if any."""
        for event in self.events:
            if event.kind is EventKind.OPERATION_FOILED:
                return event.subject
        return None

    def hidden_path_steps(self) -> List[TraceEvent]:
        """Events where an object rode the dotted IMPL_ACPT transition."""
        return [
            e
            for e in self.events
            if e.outcome is not None and e.outcome.via_hidden_path
        ]

    @property
    def hidden_path_count(self) -> int:
        """How many hidden transitions the traversal used."""
        return len(self.hidden_path_steps())

    def pfsm_outcomes(self) -> List[PfsmOutcome]:
        """All pFSM step outcomes in order."""
        return [e.outcome for e in self.events if e.outcome is not None]

    def operations_completed(self) -> List[str]:
        """Names of operations whose exploitation completed."""
        return [
            e.subject
            for e in self.events
            if e.kind is EventKind.OPERATION_COMPLETE
        ]

    # -- rendering --------------------------------------------------------

    def to_text(self) -> str:
        """Human-readable multi-line trace."""
        lines = [f"trace of {self.model_name}"]
        for event in self.events:
            marker = {
                EventKind.OPERATION_START: "»",
                EventKind.PFSM_STEP: " ",
                EventKind.OPERATION_FOILED: "✗",
                EventKind.OPERATION_COMPLETE: "✓",
                EventKind.GATE_CROSSED: "▷",
                EventKind.EXPLOIT_SUCCEEDED: "!!",
                EventKind.EXPLOIT_FOILED: "--",
            }[event.kind]
            suffix = ""
            if event.outcome is not None:
                path = "hidden" if event.outcome.via_hidden_path else (
                    "accept" if event.outcome.accepted else "reject"
                )
                suffix = f" [{path}]"
            lines.append(f"  {marker} {event.kind.value}: {event.subject}"
                         f"{' — ' + event.detail if event.detail else ''}{suffix}")
        return "\n".join(lines)

    def summary(self) -> Tuple[bool, int, Optional[str]]:
        """``(succeeded, hidden_path_count, foiled_at)``."""
        return (self.succeeded, self.hidden_path_count, self.foiled_at)
