"""Fluent builder for vulnerability models.

Assembling a Figure 3-style model by hand means nesting pFSMs inside
operations inside a cascade with gates — workable but noisy.  The
builder linearises it::

    model = (
        ModelBuilder("Sendmail Signed Integer Overflow", bugtraq_ids=[3163])
        .operation("Write debug level i to tTvect[x]", obj="input integer")
            .pfsm("pFSM1", activity="get and convert str_x",
                  object_name="str_x",
                  spec=represents_int, impl=None,
                  transform=to_int,
                  check_type=PfsmType.OBJECT_TYPE)
            .pfsm("pFSM2", ...)
        .gate(".GOT entry of setuid points to Mcode", carry=...)
        .operation("Manipulate the GOT entry of setuid", obj="addr_setuid")
            .pfsm("pFSM3", ...)
        .build()
    )
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

from .classification import PfsmType
from .machine import PropagationGate, VulnerabilityModel
from .operation import Operation, OperationResult
from .pfsm import PrimitiveFSM
from .predicates import Predicate

__all__ = ["ModelBuilder"]


class ModelBuilder:
    """Accumulates operations, pFSMs, and gates; ``build()`` validates."""

    def __init__(
        self,
        name: str,
        bugtraq_ids: Sequence[int] = (),
        final_consequence: str = "security compromised",
    ) -> None:
        self._name = name
        self._bugtraq_ids = tuple(bugtraq_ids)
        self._final_consequence = final_consequence
        self._operations: List[Operation] = []
        self._gates: List[PropagationGate] = []
        self._pending_name: Optional[str] = None
        self._pending_obj: str = ""
        self._pending_pfsms: List[PrimitiveFSM] = []

    # -- operations -------------------------------------------------------

    def operation(self, name: str, obj: str = "") -> "ModelBuilder":
        """Start a new operation; closes the previous one."""
        self._flush_operation()
        self._pending_name = name
        self._pending_obj = obj
        self._pending_pfsms = []
        return self

    def _flush_operation(self) -> None:
        if self._pending_name is None:
            return
        if not self._pending_pfsms:
            raise ValueError(
                f"operation {self._pending_name!r} has no pFSMs"
            )
        self._operations.append(
            Operation(self._pending_name, self._pending_obj,
                      self._pending_pfsms)
        )
        self._pending_name = None
        self._pending_pfsms = []

    # -- pFSMs ----------------------------------------------------------------

    def pfsm(
        self,
        name: str,
        activity: str,
        object_name: str,
        spec: Predicate,
        impl: Optional[Predicate] = None,
        action: str = "",
        transform: Optional[Callable[[Any], Any]] = None,
        check_type: Optional[PfsmType] = None,
    ) -> "ModelBuilder":
        """Add a pFSM to the current operation."""
        if self._pending_name is None:
            raise ValueError("pfsm() before any operation()")
        self._pending_pfsms.append(
            PrimitiveFSM(
                name=name,
                activity=activity,
                object_name=object_name,
                spec_accepts=spec,
                impl_accepts=impl,
                accept_action=action,
                transform=transform,
                check_type=check_type,
            )
        )
        return self

    # -- gates ------------------------------------------------------------------

    def gate(
        self,
        description: str,
        carry: Optional[Callable[[OperationResult], Any]] = None,
    ) -> "ModelBuilder":
        """Add the propagation gate between the previous operation and
        the next one."""
        self._flush_operation()
        if not self._operations:
            raise ValueError("gate() before any completed operation")
        if carry is None:
            self._gates.append(PropagationGate(description))
        else:
            self._gates.append(PropagationGate(description, carry))
        return self

    # -- terminal ------------------------------------------------------------------

    def build(self) -> VulnerabilityModel:
        """Validate and assemble the model."""
        self._flush_operation()
        return VulnerabilityModel(
            name=self._name,
            operations=self._operations,
            gates=self._gates,
            bugtraq_ids=self._bugtraq_ids,
            final_consequence=self._final_consequence,
        )
