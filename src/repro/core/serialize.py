"""Serialization of models, traces, and analysis reports to plain dicts
and JSON.

Predicates are code, so a round-trip of *semantics* is out of scope;
what serializes is the model *structure* (names, activities, label
texts, check types, which transitions exist) and complete *traces* —
enough for storage, diffing, rendering in other tools, and regression
baselines.  ``model_fingerprint`` gives a stable digest of a model's
structure for change detection.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Optional

from .machine import ModelResult, VulnerabilityModel
from .operation import Operation
from .pfsm import PrimitiveFSM
from .trace import ExploitTrace

__all__ = [
    "pfsm_to_dict",
    "operation_to_dict",
    "model_to_dict",
    "model_to_json",
    "trace_to_dict",
    "result_to_dict",
    "model_fingerprint",
    "sweep_task_fingerprint",
]


def pfsm_to_dict(pfsm: PrimitiveFSM) -> Dict[str, Any]:
    """Structural dict of one primitive FSM."""
    return {
        "name": pfsm.name,
        "activity": pfsm.activity,
        "object": pfsm.object_name,
        "spec": pfsm.spec_accepts.description,
        "impl": (pfsm.impl_accepts.description
                 if pfsm.impl_accepts is not None else None),
        "has_check": pfsm.has_check,
        "action": pfsm.accept_action,
        "check_type": pfsm.check_type.value if pfsm.check_type else None,
        "transitions": [
            {
                "kind": transition.kind.value,
                "label": transition.label.render(),
                "exists": transition.exists,
                "hidden": transition.is_hidden,
            }
            for transition in pfsm.transitions_spec()
        ],
    }


def operation_to_dict(operation: Operation) -> Dict[str, Any]:
    """Structural dict of one operation."""
    return {
        "name": operation.name,
        "object": operation.object_description,
        "pfsms": [pfsm_to_dict(pfsm) for pfsm in operation.pfsms],
    }


def model_to_dict(model: VulnerabilityModel) -> Dict[str, Any]:
    """Structural dict of a whole model."""
    return {
        "name": model.name,
        "bugtraq_ids": list(model.bugtraq_ids),
        "final_consequence": model.final_consequence,
        "operations": [operation_to_dict(op) for op in model.operations],
        "gates": [gate.description for gate in model.gates],
    }


def model_to_json(model: VulnerabilityModel, indent: int = 2) -> str:
    """JSON text of the model structure."""
    return json.dumps(model_to_dict(model), indent=indent, sort_keys=True)


def trace_to_dict(trace: ExploitTrace) -> Dict[str, Any]:
    """Complete dict of one traversal trace."""
    return {
        "model": trace.model_name,
        "succeeded": trace.succeeded,
        "foiled_at": trace.foiled_at,
        "hidden_path_count": trace.hidden_path_count,
        "events": [
            {
                "kind": event.kind.value,
                "subject": event.subject,
                "detail": event.detail,
                "outcome": (
                    {
                        "accepted": event.outcome.accepted,
                        "hidden": event.outcome.via_hidden_path,
                        "transitions": [
                            t.value for t in event.outcome.transitions
                        ],
                    }
                    if event.outcome is not None
                    else None
                ),
            }
            for event in trace.events
        ],
    }


def result_to_dict(result: ModelResult) -> Dict[str, Any]:
    """Dict of a full model result (trace plus per-operation summary)."""
    return {
        "model": result.model_name,
        "compromised": result.compromised,
        "hidden_path_count": result.hidden_path_count,
        "foiled_at": result.foiled_at,
        "operations": [
            {
                "name": op_result.operation_name,
                "completed": op_result.completed,
                "exploited": op_result.exploited,
                "foiled_by": op_result.foiled_by,
            }
            for op_result in result.operation_results
        ],
        "trace": trace_to_dict(result.trace),
    }


def model_fingerprint(model: VulnerabilityModel) -> str:
    """Stable SHA-256 digest of the model's serialized structure.

    Securing a pFSM, renaming an activity, or adding an operation all
    change the fingerprint; re-building an identical model does not.
    """
    canonical = json.dumps(model_to_dict(model), sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _stable_callable_ref(fn: Any) -> Optional[str]:
    """``module:qualname`` when that names ``fn`` unambiguously (an
    importable module-level callable or class), ``None`` for lambdas
    and local closures — those have no cross-run identity."""
    if fn is None:
        return ""
    qualname = getattr(fn, "__qualname__", None)
    module = getattr(fn, "__module__", None)
    if not qualname or not module or "<" in qualname:
        return None
    return f"{module}:{qualname}"


def sweep_task_fingerprint(
    model: Any,
    operation_name: str,
    pfsm: PrimitiveFSM,
    domain_digest: str,
    limit: int,
) -> Optional[str]:
    """Stable identity of one sweep task's *result* — the key of the
    resumable result store (see :mod:`repro.core.dist`).

    Combines the model fingerprint (``model`` may be the
    :class:`VulnerabilityModel` itself or an already-computed
    fingerprint string) with everything the hidden-witness scan depends
    on: the pFSM's predicate **spec hashes** (semantic identity — see
    :mod:`repro.core.predspec`), its transform/check-type references,
    the domain digest, and the witness limit.  Returns ``None`` when any
    component has no stable cross-run form (opaque predicates, lambda
    transforms) — such tasks are always recomputed, never resumed.
    """
    spec_hash = pfsm.spec_accepts.spec_hash
    if spec_hash is None:
        return None
    impl = pfsm.impl_accepts
    if impl is None:
        impl_hash = "<no-check>"
    else:
        impl_hash = impl.spec_hash
        if impl_hash is None:
            return None
    transform_ref = _stable_callable_ref(pfsm.transform)
    if transform_ref is None:
        return None
    parts = [
        model if isinstance(model, str) else model_fingerprint(model),
        operation_name,
        pfsm.name,
        pfsm.activity,
        spec_hash,
        impl_hash,
        transform_ref,
        pfsm.check_type.value if pfsm.check_type is not None else "",
        domain_digest,
        str(limit),
    ]
    return hashlib.sha256("\x1f".join(parts).encode("utf-8")).hexdigest()
