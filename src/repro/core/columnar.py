"""Columnar domain execution — struct-of-arrays encodings and
whole-column predicate kernels.

Every non-interval strategy in :func:`repro.core.sweep.
hidden_witness_scan` judges one Python object at a time: the compiled
:class:`~repro.core.plan.ScanProgram` is a fused closure, but it is
still *called* once per object, through cache round-trips and identity
memos.  For the corpus-scale domains the ROADMAP targets — millions of
integers, tiled probe strings, record products — that per-object
dispatch dominates the sweep.  This module adds the standard analytical
fix: **columnar execution**.

Three layers:

* **The encoder.**  :func:`encoding_for` converts a domain into a
  struct-of-arrays :class:`Encoding` — one typed column per field (or
  one column for scalar domains), with the row id implicit in position.
  Integer domains encode as ``int64`` buffers, strings/bytes keep their
  value list plus a vectorizable length column; ``range`` backings and
  lazy record products encode without materializing the product's
  dicts.  Encodings are memoized on the domain object and shared
  through a bounded :class:`EncodingCache` keyed by
  :func:`repro.core.dist.domain_digest`, so every task of a sweep over
  one domain pays the encoding once.

* **The kernels.**  :func:`scan_program` lowers a closed predspec DAG
  (through the same folded node trees as :mod:`repro.core.plan`) into
  whole-column mask operations: comparisons become vectorized compares,
  boolean combinators become mask algebra, ``attr`` nodes switch to the
  field's column.  With ``numpy`` installed the masks are boolean
  ndarrays; without it a pure-stdlib fallback represents each mask as a
  big integer over one ``0x00``/``0x01`` byte per row (``&``/``|`` are
  then single C-level big-int operations, and witness selection is a
  C-level ``bytes.find`` scan).  Node masks are cached on the encoding
  by structural digest, so tasks and fused serve batches sharing
  subpredicates over one domain reuse each other's masks.

  Kernels are *bit-for-bit equivalent* to the scalar scan: every leaf
  verdict is derived analytically per column type, including the
  fail-secure exception semantics (``len`` of an ``int`` raises, so
  ``lenle`` over an integer column is the constant-``False`` mask — the
  same verdict the interpreter's shield produces) and the comparison
  constructors' ``int(·)`` coercion (``le`` over a string column falls
  back to an elementwise guarded coercion).  A spec that cannot be
  vectorized exactly (``named`` predicates, nested ``attr``, columns of
  mixed type) *bails*: :func:`scan_program` returns ``None`` and the
  caller falls through to the compiled scalar scan.

* **Zero-copy sharing.**  :func:`export_shared` serializes an encoding
  into one ``multiprocessing.shared_memory`` segment (``int64`` columns
  as raw buffers, other columns as one pickled blob) and returns a tiny
  picklable :class:`SharedColumnarDomain` ref; pool workers attach the
  segment (read-only, via ``np.frombuffer`` / ``memoryview.cast``) and
  scan without the domain ever crossing the pipe.  The parent owns the
  segment lifecycle — create before dispatch, unlink after the sweep —
  while workers keep a small bounded attachment cache; see
  :mod:`repro.core.dist` for the per-sweep session and its counters.
  Where shared memory is unavailable the ref degrades to carrying the
  column payload inline (pickled bytes — no sharing, but workers still
  scan columnar).

``numpy`` is strictly optional: the import is guarded, the fallback
kernels are always available, and :func:`force_fallback` /
``REPRO_NO_NUMPY=1`` select them explicitly (the equivalence tests and
the benchmark A/B run both modes).  The whole strategy can be bypassed
with :func:`set_enabled` (``repro sweep --no-columnar``).
"""

from __future__ import annotations

import os
import pickle
import threading
import weakref
from array import array
from collections import OrderedDict
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from ..obs import DEFAULT as _OBS
from . import plan as _plan
from .predspec import decode_value, spec_fields, _resolve_type

try:  # optional accelerator — the stdlib fallback is always available
    import numpy as _np
except Exception:  # pragma: no cover - environment-dependent
    _np = None

__all__ = [
    "Encoding",
    "EncodingCache",
    "SharedColumnarDomain",
    "disabled",
    "encoding_cache",
    "encoding_for",
    "export_shared",
    "force_fallback",
    "is_enabled",
    "kernel_available",
    "reset",
    "scan_program",
    "set_enabled",
    "set_min_rows",
    "shm_supported",
    "stats",
    "using_numpy",
]


_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1

#: Domains smaller than this scan faster scalar than they encode.
_DEFAULT_MIN_ROWS = 256

#: Rows before the duplicate-density gate engages (below it, counting
#: ids costs more than it saves and tests use tiny corpora anyway).
_DUP_GATE_MIN_ROWS = 4096
#: Encoding (and lazy-product materialization) ceiling — memory guard.
_DEFAULT_MAX_ROWS = 1 << 22

#: Node masks cheaper than this are not worth caching (mirrors the CSE
#: threshold in :mod:`repro.core.plan`).
_MASK_CACHE_MIN_COST = 0.9
#: Per-encoding mask cache bound (each entry is ~one byte per row).
_MASK_CACHE_ENTRIES = 32

_ENABLED = True
_MIN_ROWS = _DEFAULT_MIN_ROWS
_MAX_ROWS = _DEFAULT_MAX_ROWS
_FORCE_FALLBACK = os.environ.get("REPRO_NO_NUMPY", "") not in ("", "0")


class _Bail(Exception):
    """This spec/domain pair cannot be vectorized exactly — fall back."""


def using_numpy() -> bool:
    """Is the numpy fast path active (importable and not bypassed)?"""
    return _np is not None and not _FORCE_FALLBACK


def is_enabled() -> bool:
    """Is the columnar strategy active? (see :func:`set_enabled`)."""
    return _ENABLED


def set_enabled(on: bool) -> None:
    """Globally enable/bypass columnar execution
    (``repro sweep --no-columnar``)."""
    global _ENABLED
    _ENABLED = bool(on)


@contextmanager
def disabled():
    """Temporarily bypass columnar execution — the benchmark's A/B
    switch."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = False
    try:
        yield
    finally:
        _ENABLED = previous


@contextmanager
def force_fallback():
    """Temporarily run the pure-stdlib kernels even when numpy is
    installed (equivalence tests, the fallback benchmark leg)."""
    global _FORCE_FALLBACK
    previous = _FORCE_FALLBACK
    _FORCE_FALLBACK = True
    _ENCODINGS.clear()
    try:
        yield
    finally:
        _FORCE_FALLBACK = previous
        _ENCODINGS.clear()


def set_min_rows(rows: int) -> int:
    """Set the minimum domain size for columnar encoding; returns the
    previous threshold.  Tests drop it to exercise tiny domains."""
    global _MIN_ROWS
    previous = _MIN_ROWS
    _MIN_ROWS = max(0, int(rows))
    _ENCODINGS.clear()
    return previous


def reset() -> None:
    """Fresh module state: default thresholds, empty encoding cache."""
    global _ENABLED, _MIN_ROWS, _MAX_ROWS
    _ENABLED = True
    _MIN_ROWS = _DEFAULT_MIN_ROWS
    _MAX_ROWS = _DEFAULT_MAX_ROWS
    _ENCODINGS.clear()


def _config_stamp() -> Tuple[Any, ...]:
    return (using_numpy(), _MIN_ROWS, _MAX_ROWS)


# ---------------------------------------------------------------------------
# Mask backends.
#
# numpy masks are boolean ndarrays.  Stdlib masks are non-negative big
# integers holding one 0x00/0x01 byte per row (little-endian): ``&`` and
# ``|`` are then single big-int operations, negation XORs against the
# all-ones constant, and witness selection is a C-level ``bytes.find``.
# ---------------------------------------------------------------------------

class _NumpyOps:
    name = "numpy"

    def __init__(self, n: int) -> None:
        self.n = n

    def const(self, flag: bool) -> Any:
        return (_np.ones if flag else _np.zeros)(self.n, dtype=bool)

    def conj(self, a: Any, b: Any) -> Any:
        return a & b

    def disj(self, a: Any, b: Any) -> Any:
        return a | b

    def neg(self, a: Any) -> Any:
        return ~a

    def from_iter(self, flags: Iterable[int]) -> Any:
        return _np.fromiter(flags, dtype=bool, count=self.n)

    def indices(self, mask: Any, limit: int) -> List[int]:
        hits = _np.flatnonzero(mask)
        if limit < len(hits):
            hits = hits[:limit]
        return [int(i) for i in hits]


class _IntOps:
    name = "stdlib"

    def __init__(self, n: int) -> None:
        self.n = n
        self._ones = int.from_bytes(b"\x01" * n, "little") if n else 0

    def const(self, flag: bool) -> int:
        return self._ones if flag else 0

    def conj(self, a: int, b: int) -> int:
        return a & b

    def disj(self, a: int, b: int) -> int:
        return a | b

    def neg(self, a: int) -> int:
        return self._ones ^ a

    def from_iter(self, flags: Iterable[int]) -> int:
        return int.from_bytes(bytes(bytearray(flags)), "little")

    def indices(self, mask: int, limit: int) -> List[int]:
        found: List[int] = []
        if mask == 0 or limit <= 0:
            return found
        data = mask.to_bytes(self.n, "little")
        position = data.find(1)
        while position != -1 and len(found) < limit:
            found.append(position)
            position = data.find(1, position + 1)
        return found


def _make_ops(n: int) -> Any:
    return _NumpyOps(n) if using_numpy() else _IntOps(n)


# ---------------------------------------------------------------------------
# Columns and the type scan.
# ---------------------------------------------------------------------------

class _Column:
    """One typed column: ``kind`` is ``int``/``str``/``bytes``/``obj``.
    ``values`` is an ``int64`` buffer (ndarray, ``array('q')``, or a
    cast memoryview over shared memory) for ``int`` columns and a value
    sequence otherwise; ``lengths`` is built lazily for ``str``/``bytes``
    columns (the vectorized ``lenle``/``truthy`` path)."""

    __slots__ = ("kind", "values", "_lengths")

    def __init__(self, kind: str, values: Any) -> None:
        self.kind = kind
        self.values = values
        self._lengths: Any = None

    def lengths(self) -> Any:
        if self._lengths is None:
            values = self.values
            if using_numpy():
                self._lengths = _np.fromiter(
                    (len(v) for v in values), dtype=_np.int64,
                    count=len(values))
            else:
                self._lengths = array("q", map(len, values))
        return self._lengths


def _scan_kind(values: Iterable[Any]) -> str:
    """The exact column type of a value sequence — ``obj`` whenever a
    vectorized compare could diverge from scalar semantics (mixed types,
    bool, out-of-``int64`` integers)."""
    kind = ""
    for value in values:
        t = type(value)
        if t is int:
            if not _I64_MIN <= value <= _I64_MAX:
                return "obj"
            k = "int"
        elif t is str:
            k = "str"
        elif t is bytes:
            k = "bytes"
        else:
            return "obj"
        if not kind:
            kind = k
        elif kind != k:
            return "obj"
    return kind or "obj"


def _tile(values: List[Any], stride: int, repeat: int) -> List[Any]:
    """Row-major product column: each value repeated ``stride`` times,
    the block tiled ``repeat`` times."""
    if stride == 1:
        return values * repeat
    return [v for v in values for _ in range(stride)] * repeat


# ---------------------------------------------------------------------------
# The encoding.
# ---------------------------------------------------------------------------

class Encoding:
    """Struct-of-arrays form of one domain.

    ``mode`` records the source shape: ``"range"`` / ``"scalar"``
    (materialized ints, strings, or bytes), ``"record"`` (homogeneous
    dicts), ``"product"`` (a lazy :class:`~repro.core.witness.
    _LazyProduct`, whose columns tile without building the dicts), or
    ``"shared"`` (attached from a :class:`SharedColumnarDomain`).
    Column buffers, node masks, and compiled kernels are all memoized
    here, so every consumer of one domain shares them.  Like
    :class:`~repro.core.plan.NodeMemo` this is deliberately lock-free:
    kernels are pure, so a racing double-computation wastes work but
    never corrupts a verdict.
    """

    __slots__ = ("n", "mode", "scalar_kind", "fields", "ops",
                 "_items", "_range", "_sources", "_strides", "_columns",
                 "_field_kinds", "_masks", "_kernels", "_row_keys")

    def __init__(self, n: int, mode: str) -> None:
        self.n = n
        self.mode = mode
        self.scalar_kind: Optional[str] = None
        self.fields: Tuple[str, ...] = ()
        self.ops = _make_ops(n)
        self._items: Any = None
        self._range: Optional[range] = None
        self._sources: Dict[str, List[Any]] = {}
        self._strides: Dict[str, Tuple[int, int]] = {}
        self._columns: Dict[Optional[str], _Column] = {}
        self._field_kinds: Dict[str, str] = {}
        self._masks: "OrderedDict[Tuple[str, Optional[str]], Any]" = \
            OrderedDict()
        self._kernels: Dict[str, Any] = {}
        self._row_keys: Tuple[str, ...] = ()

    # -- column access -----------------------------------------------------

    def field_kind(self, name: str) -> str:
        """Exact type of one record field's column (memoized type scan)."""
        kind = self._field_kinds.get(name)
        if kind is None:
            if name in self._sources:
                kind = _scan_kind(self._sources[name])
            else:
                kind = _scan_kind(item[name] for item in self._items)
            self._field_kinds[name] = kind
        return kind

    def column(self, field: Optional[str]) -> _Column:
        """The typed column buffer for ``field`` (``None`` = the scalar
        column), materialized on first use and cached."""
        column = self._columns.get(field)
        if column is not None:
            return column
        if field is None:
            column = self._build_scalar_column()
        else:
            column = self._build_field_column(field)
        self._columns[field] = column
        return column

    def _build_scalar_column(self) -> _Column:
        kind = self.scalar_kind
        if kind is None:
            raise _Bail("record domain has no scalar column")
        if self._range is not None:
            backing = self._range
            if using_numpy():
                values = _np.arange(backing.start, backing.stop,
                                    backing.step, dtype=_np.int64)
            else:
                values = array("q", backing)
            return _Column("int", values)
        items = self._items
        if kind == "int":
            if using_numpy():
                values = _np.fromiter(items, dtype=_np.int64, count=self.n)
            else:
                values = array("q", items)
            return _Column("int", values)
        return _Column(kind, items)

    def _build_field_column(self, field: str) -> _Column:
        kind = self.field_kind(field)
        if kind == "obj":
            return _Column("obj", None)
        if field in self._sources:
            source = self._sources[field]
            stride, repeat = self._strides[field]
            if kind == "int":
                if using_numpy():
                    base = _np.asarray(source, dtype=_np.int64)
                    values = _np.tile(_np.repeat(base, stride), repeat)
                else:
                    values = array("q", _tile(source, stride, repeat))
            else:
                values = _tile(source, stride, repeat)
            return _Column(kind, values)
        items = self._items
        if kind == "int":
            if using_numpy():
                values = _np.fromiter((item[field] for item in items),
                                      dtype=_np.int64, count=self.n)
            else:
                values = array("q", (item[field] for item in items))
        else:
            values = [item[field] for item in items]
        return _Column(kind, values)

    # -- witness materialization -------------------------------------------

    def row(self, index: int) -> Any:
        """The domain object at ``index`` — the original reference for
        materialized domains, an equal reconstruction otherwise."""
        if self._items is not None:
            return self._items[index]
        if self._range is not None:
            return self._range[index]
        if self.mode == "product":
            sources, strides = self._sources, self._strides
            return {
                name: sources[name][
                    (index // strides[name][0]) % len(sources[name])]
                for name in self.fields
            }
        # shared: rebuild from the attached columns
        if self.scalar_kind is not None:
            column = self.column(None)
            value = column.values[index]
            return int(value) if column.kind == "int" else value
        out = {}
        for name in self.fields:
            column = self.column(name)
            if column.kind == "int":
                out[name] = int(column.values[index])
            elif column.kind == "obj":
                out[name] = self._sources[name][index]
            else:
                out[name] = column.values[index]
        return out

    def rows(self, indices: Iterable[int]) -> List[Any]:
        return [self.row(i) for i in indices]

    # -- mask cache --------------------------------------------------------

    def mask_get(self, key: Tuple[str, Optional[str]]) -> Any:
        mask = self._masks.get(key)
        if mask is not None:
            self._masks.move_to_end(key)
            if _OBS.enabled:
                _OBS.incr("columnar.masks.hits")
        return mask

    def mask_put(self, key: Tuple[str, Optional[str]], mask: Any) -> None:
        self._masks[key] = mask
        self._masks.move_to_end(key)
        while len(self._masks) > _MASK_CACHE_ENTRIES:
            self._masks.popitem(last=False)

    # -- kernels -----------------------------------------------------------

    def kernel(self, program: Any) -> Optional["Kernel"]:
        """A validated columnar kernel for one compiled program, or
        ``None`` when its spec cannot be vectorized exactly over this
        encoding (memoized per program digest)."""
        digest = program.digest
        cached = self._kernels.get(digest)
        if cached is not None:
            return cached if cached is not _UNVECTORIZABLE else None
        try:
            # Pre-flight: a spec touching a mixed-type ("obj") column can
            # never vectorize — reject before building the node tree.
            for name in spec_fields(program.spec):
                if self.fields and name in self.fields \
                        and self.field_kind(name) == "obj":
                    raise _Bail(f"mixed-type column {name!r}")
            root = _plan._build(program.spec)
            _validate(root, self, None)
        except Exception:
            self._kernels[digest] = _UNVECTORIZABLE
            return None
        kernel = Kernel(self, root)
        self._kernels[digest] = kernel
        if _OBS.enabled:
            _OBS.incr("columnar.kernels")
        return kernel


#: Sentinel marking a program digest as known-unvectorizable.
_UNVECTORIZABLE = object()


class Kernel:
    """One compiled columnar scan: a folded spec tree bound to an
    encoding.  ``mask()`` evaluates bottom-up through the encoding's
    digest-keyed mask cache; ``witnesses(limit)`` selects the first
    ``limit`` set rows in domain order."""

    __slots__ = ("encoding", "root")

    def __init__(self, encoding: Encoding, root: Any) -> None:
        self.encoding = encoding
        self.root = root

    def mask(self) -> Any:
        return _node_mask(self.root, self.encoding, None)

    def witnesses(self, limit: int) -> List[Any]:
        encoding = self.encoding
        indices = encoding.ops.indices(self.mask(), limit)
        return encoding.rows(indices)


# ---------------------------------------------------------------------------
# Validation: can this spec tree run exactly over this encoding?
# ---------------------------------------------------------------------------

def _leaf_target_kind(encoding: Encoding, field: Optional[str]) -> str:
    """The column kind a leaf at ``field`` context evaluates against —
    ``"record"`` for leaves applied to the record object itself."""
    if field is not None:
        return encoding.field_kind(field)
    if encoding.scalar_kind is not None:
        return encoding.scalar_kind
    return "record"


def _validate(node: Any, encoding: Encoding, field: Optional[str]) -> None:
    op = node.op
    if op in ("and", "or"):
        for child in node.children:
            _validate(child, encoding, field)
        return
    if op == "not":
        _validate(node.children[0], encoding, field)
        return
    if op == "attr":
        if field is not None:
            raise _Bail("nested attr")
        if encoding.scalar_kind is not None:
            # getattr on a bare int/str can legitimately resolve
            # (``.real``, ``.imag``) — out of scope for vectorization.
            raise _Bail("attr over a scalar domain")
        name = node.args[0]
        if name not in encoding.fields:
            return  # unknown field: the constant-False mask is exact
        if encoding.field_kind(name) == "obj":
            raise _Bail("mixed-type field column")
        _validate(node.children[0], encoding, name)
        return
    if op == "named":
        raise _Bail("opaque named predicate")
    kind = _leaf_target_kind(encoding, field)
    if kind == "obj":
        raise _Bail("mixed-type column")
    if kind == "record":
        # Leaves over the record object itself are constant across rows
        # (every row has the same keys) — except equality against a
        # mapping, which would need the materialized rows.
        if op == "eq" and isinstance(decode_value(node.args[0]), dict):
            raise _Bail("record equality")
    if op not in ("true", "false", "truthy", "eq", "range", "le", "ge",
                  "lenle", "contains", "ncontains", "matches", "isa"):
        raise _Bail(f"unsupported leaf {op!r}")


# ---------------------------------------------------------------------------
# Mask evaluation.
# ---------------------------------------------------------------------------

def _node_mask(node: Any, encoding: Encoding, field: Optional[str]) -> Any:
    cacheable = node.cost >= _MASK_CACHE_MIN_COST or node.children
    key = (node.digest, field)
    if cacheable:
        cached = encoding.mask_get(key)
        if cached is not None:
            return cached
    ops = encoding.ops
    op = node.op
    if op == "and":
        mask = _node_mask(node.children[0], encoding, field)
        for child in node.children[1:]:
            mask = ops.conj(mask, _node_mask(child, encoding, field))
    elif op == "or":
        mask = _node_mask(node.children[0], encoding, field)
        for child in node.children[1:]:
            mask = ops.disj(mask, _node_mask(child, encoding, field))
    elif op == "not":
        mask = ops.neg(_node_mask(node.children[0], encoding, field))
    elif op == "attr":
        name = node.args[0]
        if name not in encoding.fields:
            # ``_get`` raises on the missing key; the scalar shield maps
            # that to False at this node for every row.
            mask = ops.const(False)
        else:
            mask = _node_mask(node.children[0], encoding, name)
    else:
        mask = _leaf_mask(node, encoding, field)
    if cacheable:
        encoding.mask_put(key, mask)
        if _OBS.enabled:
            _OBS.incr("columnar.masks.misses")
    return mask


def _leaf_mask(node: Any, encoding: Encoding, field: Optional[str]) -> Any:
    ops = encoding.ops
    op, args = node.op, node.args
    if op == "true":
        return ops.const(True)
    if op == "false":
        return ops.const(False)
    kind = _leaf_target_kind(encoding, field)
    if kind == "record":
        return ops.const(_record_leaf_verdict(node, encoding))
    column = encoding.column(field)
    if kind == "int":
        return _int_leaf_mask(op, args, column, ops)
    return _text_leaf_mask(op, args, column, ops, kind)


def _record_leaf_verdict(node: Any, encoding: Encoding) -> bool:
    """Leaves applied to the record dict itself: every row has the same
    keys, so the scalar verdict (shield included) is one constant."""
    op, args = node.op, node.args
    fields = encoding.fields
    if op == "truthy":
        return bool(fields)
    if op == "lenle":
        return len(fields) <= args[0]
    if op == "isa":
        types = tuple(_resolve_type(mod, qual) for mod, qual in args[0])
        return isinstance({}, types)
    if op in ("contains", "ncontains"):
        needle = decode_value(args[0])
        representative = dict.fromkeys(fields)
        try:
            inside = needle in representative
        except TypeError:
            return False  # unhashable needle: both variants shield False
        return (not inside) if op == "ncontains" else inside
    if op == "eq":
        # non-mapping expected (validation bails on mappings): a dict
        # never equals it.
        return False
    # range/le/ge (int(dict) raises) and matches (search(dict) raises)
    # shield to False.
    return False


def _int_leaf_mask(op: str, args: Tuple[Any, ...], column: _Column,
                   ops: Any) -> Any:
    values = column.values
    numpy_path = ops.name == "numpy"
    if op == "truthy":
        if numpy_path:
            return values != 0
        return ops.from_iter(1 if v else 0 for v in values)
    if op == "eq":
        expected = decode_value(args[0])
        if isinstance(expected, bool):
            expected = int(expected)
        if not isinstance(expected, (int, float)):
            return ops.const(False)  # an int never equals a non-number
        if isinstance(expected, int) and not \
                _I64_MIN <= expected <= _I64_MAX:
            return ops.const(False)  # column values all fit in int64
        if numpy_path:
            return values == expected
        return ops.from_iter(1 if v == expected else 0 for v in values)
    if op == "le":
        bound = args[0]
        if bound >= _I64_MAX:
            return ops.const(True)
        if bound < _I64_MIN:
            return ops.const(False)
        if numpy_path:
            return values <= bound
        return ops.from_iter(1 if v <= bound else 0 for v in values)
    if op == "ge":
        bound = args[0]
        if bound <= _I64_MIN:
            return ops.const(True)
        if bound > _I64_MAX:
            return ops.const(False)
        if numpy_path:
            return values >= bound
        return ops.from_iter(1 if v >= bound else 0 for v in values)
    if op == "range":
        low, high = args
        if low > high:
            return ops.const(False)
        low = max(low, _I64_MIN)
        high = min(high, _I64_MAX)
        if numpy_path:
            return (values >= low) & (values <= high)
        return ops.from_iter(
            1 if low <= v <= high else 0 for v in values)
    if op == "isa":
        types = tuple(_resolve_type(mod, qual) for mod, qual in args[0])
        return ops.const(isinstance(0, types))
    # len()/``in``/regex over an int raise; the scalar shield maps every
    # row to False.
    if op in ("lenle", "contains", "ncontains", "matches"):
        return ops.const(False)
    raise _Bail(f"unsupported int leaf {op!r}")


def _text_leaf_mask(op: str, args: Tuple[Any, ...], column: _Column,
                    ops: Any, kind: str) -> Any:
    values = column.values
    numpy_path = ops.name == "numpy"
    if op == "truthy":
        if numpy_path:
            return column.lengths() != 0
        return ops.from_iter(1 if v else 0 for v in values)
    if op == "lenle":
        bound = args[0]
        if numpy_path:
            return column.lengths() <= bound
        return ops.from_iter(
            1 if length <= bound else 0 for length in column.lengths())
    if op == "eq":
        expected = decode_value(args[0])
        if not isinstance(expected, (str, bytes)):
            return ops.const(False)
        return ops.from_iter(1 if v == expected else 0 for v in values)
    if op in ("contains", "ncontains"):
        needle = decode_value(args[0])
        same = isinstance(needle, str) if kind == "str" \
            else isinstance(needle, (bytes, bytearray))
        if not same:
            # ``needle in text`` raises TypeError for a foreign needle;
            # both polarity variants shield to False.
            return ops.const(False)
        if op == "contains":
            return ops.from_iter(1 if needle in v else 0 for v in values)
        return ops.from_iter(0 if needle in v else 1 for v in values)
    if op == "matches":
        import re

        pattern = args[0]
        if kind == "bytes":
            try:
                search = re.compile(pattern.encode("latin-1")).search
            except (UnicodeEncodeError, re.error):
                return ops.const(False)  # scalar path raises per object
        else:
            search = re.compile(pattern).search
        return ops.from_iter(1 if search(v) else 0 for v in values)
    if op == "isa":
        types = tuple(_resolve_type(mod, qual) for mod, qual in args[0])
        sample = "" if kind == "str" else b""
        return ops.const(isinstance(sample, types))
    if op in ("range", "le", "ge"):
        # The comparison constructors coerce with ``int(·)`` — defined
        # for numeric strings/bytes, raising (→ False) otherwise.
        if op == "range":
            low, high = args

            def verdict(v: Any) -> int:
                try:
                    return 1 if low <= int(v) <= high else 0
                except Exception:
                    return 0
        elif op == "le":
            bound = args[0]

            def verdict(v: Any) -> int:
                try:
                    return 1 if int(v) <= bound else 0
                except Exception:
                    return 0
        else:
            bound = args[0]

            def verdict(v: Any) -> int:
                try:
                    return 1 if int(v) >= bound else 0
                except Exception:
                    return 0
        return ops.from_iter(map(verdict, values))
    raise _Bail(f"unsupported text leaf {op!r}")


# ---------------------------------------------------------------------------
# The encoder.
# ---------------------------------------------------------------------------

def _build_encoding(domain: Any) -> Optional[Encoding]:
    try:
        n = len(domain)
    except TypeError:
        return None
    if n < max(1, _MIN_ROWS) or n > _MAX_ROWS:
        return None
    backing = getattr(domain, "backing", domain)
    if isinstance(backing, range):
        if not (_I64_MIN <= backing.start <= _I64_MAX
                and _I64_MIN <= backing[-1] <= _I64_MAX):
            return None
        encoding = Encoding(n, "range")
        encoding.scalar_kind = "int"
        encoding._range = backing
        return encoding
    from .witness import _LazyProduct

    if isinstance(backing, _LazyProduct):
        names = backing._names
        columns = backing._columns
        if len(set(names)) != len(names) or any(
                not isinstance(name, str) for name in names):
            return None
        if any(len(column) == 0 for column in columns):
            return None
        encoding = Encoding(n, "product")
        encoding.fields = tuple(names)
        stride = 1
        for name, column in zip(reversed(names), reversed(columns)):
            encoding._sources[name] = column
            encoding._strides[name] = (stride, n // (stride * len(column)))
            stride *= len(column)
        return encoding
    if isinstance(backing, (list, tuple)):
        items = backing
    else:
        items = list(domain)
    if len(items) != n:
        return None
    if n >= _DUP_GATE_MIN_ROWS:
        # Duplicate-dominated corpora (the same object references tiled
        # thousands of times) are the scalar scan's best case: its
        # per-scan identity memo judges each distinct object once, in
        # O(distinct), while column kernels would grind all n rows.
        # Decline so the planner keeps those on the compiled path.
        if len({id(item) for item in items}) * 20 < n:
            return None
    kind = _scan_kind(items)
    if kind != "obj":
        encoding = Encoding(n, "scalar")
        encoding.scalar_kind = kind
        encoding._items = items
        return encoding
    first = items[0]
    if type(first) is not dict:
        return None
    fields = tuple(first)
    if not all(isinstance(name, str) for name in fields):
        return None
    width = len(fields)
    for item in items:
        if type(item) is not dict or len(item) != width:
            return None
        for name in fields:
            if name not in item:
                return None
    encoding = Encoding(n, "record")
    encoding.fields = fields
    encoding._items = items
    return encoding


class EncodingCache:
    """Bounded LRU of encodings keyed by domain content digest — the
    per-sweep share point: tasks over equal-content domains (and repeat
    sweeps in one session) reuse one encoding, its columns, and its
    cached masks."""

    def __init__(self, maxsize: int = 32) -> None:
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self._data: "OrderedDict[Tuple[Any, ...], Optional[Encoding]]" = \
            OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._data)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def get(self, digest: str) -> Tuple[bool, Optional[Encoding]]:
        key = (digest, _config_stamp())
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self.hits += 1
                return True, self._data[key]
            self.misses += 1
        return False, None

    def put(self, digest: str, encoding: Optional[Encoding]) -> None:
        key = (digest, _config_stamp())
        with self._lock:
            self._data[key] = encoding
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {"hits": self.hits, "misses": self.misses,
                    "size": len(self._data), "maxsize": self.maxsize}


_ENCODINGS = EncodingCache()


def encoding_cache() -> EncodingCache:
    """The process-wide digest-keyed :class:`EncodingCache`."""
    return _ENCODINGS


def encoding_for(domain: Any) -> Optional[Encoding]:
    """The struct-of-arrays encoding of ``domain``, or ``None`` when the
    domain is not encodable (or outside the size thresholds).

    Memoized on the domain object (validated against the backend/
    threshold configuration) and shared across equal-content domains
    through the digest-keyed :func:`encoding_cache`.
    """
    if isinstance(domain, SharedColumnarDomain):
        return domain.encoding()
    stamp = _config_stamp()
    try:
        memo = _DOMAIN_MEMO.get(domain)
    except TypeError:
        memo = None
    if memo is not None and memo[0] == stamp:
        return memo[1]
    digest: Optional[str] = None
    try:
        from . import dist

        digest = dist.domain_digest(domain)
    except Exception:
        digest = None
    if digest is not None:
        hit, encoding = _ENCODINGS.get(digest)
        if hit:
            if _OBS.enabled:
                _OBS.incr("columnar.encoding.hits")
            _remember(domain, stamp, encoding)
            return encoding
    try:
        encoding = _build_encoding(domain)
    except Exception:
        encoding = None
    if encoding is not None and _OBS.enabled:
        _OBS.incr("columnar.encodings")
    if digest is not None:
        _ENCODINGS.put(digest, encoding)
    _remember(domain, stamp, encoding)
    return encoding


#: Per-domain-object encoding memo.  A *side table*, deliberately not a
#: domain attribute: an attribute would ride along in every later
#: pickle of the domain (dist task payloads, crash retries) and bloat
#: it with the full column set.  Weak keys keep encodings from pinning
#: dead domains.
_DOMAIN_MEMO: "weakref.WeakKeyDictionary[Any, Tuple[Any, ...]]" = \
    weakref.WeakKeyDictionary()


def _remember(domain: Any, stamp: Tuple[Any, ...],
              encoding: Optional[Encoding]) -> None:
    try:
        _DOMAIN_MEMO[domain] = (stamp, encoding)
    except TypeError:
        pass  # unhashable/unweakrefable: the digest cache still serves


# ---------------------------------------------------------------------------
# The scan entry points.
# ---------------------------------------------------------------------------

def scan_program(program: Any, domain: Any, limit: int) -> Optional[List[Any]]:
    """Columnar witnesses of one compiled hidden-set program over one
    domain — ``None`` when the strategy does not apply (disabled, domain
    not encodable, or spec not vectorizable), in which case the caller
    falls through to the compiled scalar scan.

    When it applies, the result is bit-for-bit what the scalar scan
    returns: witnesses in domain iteration order, repeated occurrences
    reported per occurrence, truncated at ``limit``.
    """
    if not _ENABLED or program is None:
        return None
    encoding = encoding_for(domain)
    if encoding is None:
        return None
    kernel = encoding.kernel(program)
    if kernel is None:
        return None
    try:
        return kernel.witnesses(limit)
    except Exception:
        return None


def kernel_available(program: Any, domain: Any) -> bool:
    """Would :func:`scan_program` take this task?  Validates (and
    memoizes) the kernel without computing any mask — the planner's
    probe, cheap enough for per-task cost estimation."""
    if not _ENABLED or program is None:
        return False
    encoding = encoding_for(domain)
    if encoding is None:
        return False
    return encoding.kernel(program) is not None


#: Leaf operators the kernels can lower; everything else is scalar-only.
_VECTOR_LEAVES = frozenset({
    "true", "false", "truthy", "eq", "range", "le", "ge",
    "lenle", "contains", "ncontains", "matches", "isa",
})

_SPEC_VECTOR_MEMO: Dict[str, bool] = {}


def spec_vectorizable(program: Any) -> bool:
    """Structural pre-check, no domain needed: could this program's
    spec *ever* lower to column kernels?  ``False`` for opaque named
    predicates, nested ``attr``, or operators the kernels don't know.
    Cheaper than :func:`kernel_available` (which must encode the domain
    and digest its content) — ``core.dist`` uses it to skip the
    shared-memory probe for tasks that can only ever run scalar."""
    if program is None:
        return False
    digest = getattr(program, "digest", None)
    if digest is not None:
        memo = _SPEC_VECTOR_MEMO.get(digest)
        if memo is not None:
            return memo

    def walk(node: Any, inside_attr: bool) -> bool:
        if not isinstance(node, (list, tuple)) or not node:
            return False
        op = node[0]
        if op == "named":
            return False
        if op == "attr":
            if inside_attr or len(node) < 3 or not isinstance(node[1], str):
                return False
            return walk(node[2], True)
        if op in ("and", "or", "not"):
            return all(walk(child, inside_attr) for child in node[1:])
        return op in _VECTOR_LEAVES

    ok = walk(program.spec, False)
    if digest is not None:
        if len(_SPEC_VECTOR_MEMO) > 4096:
            _SPEC_VECTOR_MEMO.clear()
        _SPEC_VECTOR_MEMO[digest] = ok
    return ok


def stats() -> Dict[str, Any]:
    """Encoding-cache counters plus the active backend, for the CLI and
    the benchmark payloads."""
    payload: Dict[str, Any] = dict(_ENCODINGS.stats())
    payload["backend"] = "numpy" if using_numpy() else "stdlib"
    payload["enabled"] = _ENABLED
    payload["min_rows"] = _MIN_ROWS
    return payload


# ---------------------------------------------------------------------------
# Zero-copy sharing across the pool.
# ---------------------------------------------------------------------------

def shm_supported() -> bool:
    """Is ``multiprocessing.shared_memory`` usable on this platform?"""
    try:
        from multiprocessing import shared_memory

        probe = shared_memory.SharedMemory(create=True, size=8)
        probe.close()
        probe.unlink()
        return True
    except Exception:
        return False


def _column_payloads(encoding: Encoding) -> Optional[List[Tuple[str, str, bytes]]]:
    """``(field, kind, raw bytes)`` per column — int columns as native
    ``int64`` buffers, everything else as one pickled value list.
    ``None`` when any column fails to serialize."""
    parts: List[Tuple[str, str, bytes]] = []
    try:
        if encoding.scalar_kind is not None:
            kind = encoding.scalar_kind
            if kind == "int":
                column = encoding.column(None)
                data = _int_column_bytes(column.values)
            else:
                data = pickle.dumps(list(encoding._items),
                                    protocol=pickle.HIGHEST_PROTOCOL)
            parts.append(("", kind, data))
            return parts
        for name in encoding.fields:
            kind = encoding.field_kind(name)
            if kind == "int":
                data = _int_column_bytes(encoding.column(name).values)
            else:
                values = [item[name] for item in encoding._items]
                data = pickle.dumps(values,
                                    protocol=pickle.HIGHEST_PROTOCOL)
            parts.append((name, kind, data))
        return parts
    except Exception:
        return None


def _int_column_bytes(values: Any) -> bytes:
    if _np is not None and isinstance(values, _np.ndarray):
        return values.tobytes()
    if isinstance(values, array):
        return values.tobytes()
    return array("q", values).tobytes()


class SharedColumnarDomain:
    """A tiny picklable stand-in for a large materialized domain.

    The parent exports the domain's columns once (to a shared-memory
    segment, or inline pickled bytes where shared memory is
    unavailable) and ships this ref in every chunk payload instead of
    the domain.  Workers attach lazily on first access; ``int64``
    columns map zero-copy (``np.frombuffer`` under numpy,
    ``memoryview.cast('q')`` otherwise), other columns unpickle from the
    segment's blob.  The object quacks like a domain: sized, iterable
    (reconstructed rows), digest-stable — and :func:`encoding_for`
    short-circuits straight to the attached encoding, so scans over it
    take the columnar strategy without re-encoding.

    Lifecycle contract: the ref never owns the segment.  The *parent*
    creates and unlinks it (one sweep session brackets dispatch);
    workers only ever attach, through a small bounded cache whose
    evictions close defensively (a mapped buffer in use keeps the
    memory alive regardless).
    """

    def __init__(self, *, segment: Optional[str], payload: Optional[bytes],
                 layout: List[Tuple[str, str, int, int]], n: int,
                 scalar_kind: Optional[str], fields: Tuple[str, ...],
                 description: str, digest: Optional[str]) -> None:
        self.segment = segment
        self.payload = payload
        self.layout = layout
        self.n = n
        self.scalar_kind = scalar_kind
        self.fields = fields
        self.description = description
        if digest:
            self._dist_digest = digest
        self._encoding: Optional[Encoding] = None

    # -- pickling ----------------------------------------------------------

    def __getstate__(self) -> Dict[str, Any]:
        state = {
            "segment": self.segment, "payload": self.payload,
            "layout": self.layout, "n": self.n,
            "scalar_kind": self.scalar_kind, "fields": self.fields,
            "description": self.description,
            "digest": getattr(self, "_dist_digest", None),
        }
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__init__(
            segment=state["segment"], payload=state["payload"],
            layout=state["layout"], n=state["n"],
            scalar_kind=state["scalar_kind"], fields=tuple(state["fields"]),
            description=state["description"], digest=state["digest"],
        )

    # -- the domain protocol ----------------------------------------------

    @property
    def backing(self) -> Any:
        return self

    def __len__(self) -> int:
        return self.n

    def __iter__(self):
        encoding = self.encoding()
        if encoding is None:
            raise RuntimeError(
                f"shared columnar segment {self.segment!r} is not attachable")
        for index in range(self.n):
            yield encoding.row(index)

    def __repr__(self) -> str:
        where = self.segment or "inline"
        return f"SharedColumnarDomain({self.description!r}, via {where})"

    # -- attachment --------------------------------------------------------

    def _raw(self) -> Any:
        if self.payload is not None:
            return self.payload
        return _attach_segment(self.segment).buf

    def encoding(self) -> Optional[Encoding]:
        if self._encoding is not None:
            return self._encoding
        try:
            raw = self._raw()
        except Exception:
            if _OBS.enabled:
                _OBS.incr("columnar.shm.attach_failures")
            return None
        encoding = Encoding(self.n, "shared")
        encoding.scalar_kind = self.scalar_kind
        encoding.fields = self.fields
        for name, kind, offset, length in self.layout:
            field = None if self.scalar_kind is not None else name
            if kind == "int":
                values = _attach_int_column(raw, offset, self.n)
                encoding._columns[field] = _Column("int", values)
            else:
                values = pickle.loads(bytes(raw[offset:offset + length]))
                if kind == "obj":
                    encoding._sources[name] = values
                else:
                    encoding._columns[field] = _Column(kind, values)
            if field is not None:
                encoding._field_kinds[name] = kind
        self._encoding = encoding
        if _OBS.enabled:
            _OBS.incr("columnar.shm.attached")
        return encoding


def _attach_int_column(raw: Any, offset: int, count: int) -> Any:
    view = memoryview(raw)[offset:offset + count * 8]
    if using_numpy():
        return _np.frombuffer(view, dtype=_np.int64, count=count)
    return view.cast("q")


#: Worker-side attachment cache: segment name → SharedMemory.  Bounded;
#: evicted handles close defensively (BufferError means a column is
#: still mapped — the OS keeps the pages alive either way).
_ATTACHED: "OrderedDict[str, Any]" = OrderedDict()
_ATTACH_LOCK = threading.Lock()
_ATTACH_MAX = 8


def _attach_segment(name: str) -> Any:
    from multiprocessing import resource_tracker, shared_memory

    with _ATTACH_LOCK:
        cached = _ATTACHED.get(name)
        if cached is not None:
            _ATTACHED.move_to_end(name)
            return cached
        # Attaching must not re-register the segment with this process's
        # resource tracker: the parent owns the lifecycle, and a second
        # registration would have the tracker unlink (or warn about) a
        # segment it never created.  ``track=False`` only exists on
        # 3.13+, so the register call is stubbed out for the duration.
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            segment = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original
        _ATTACHED[name] = segment
        while len(_ATTACHED) > _ATTACH_MAX:
            _name, stale = _ATTACHED.popitem(last=False)
            try:
                stale.close()
            except Exception:
                pass
        return segment


class SharedExport:
    """One exported domain: the picklable ref plus the parent-side
    segment handle.  ``close()`` unlinks — call it exactly once, after
    every chunk of the sweep has completed."""

    __slots__ = ("ref", "_segment", "nbytes")

    def __init__(self, ref: SharedColumnarDomain, segment: Any,
                 nbytes: int) -> None:
        self.ref = ref
        self._segment = segment
        self.nbytes = nbytes

    def close(self) -> None:
        segment = self._segment
        self._segment = None
        if segment is not None:
            try:
                segment.close()
            except Exception:
                pass
            try:
                segment.unlink()
            except Exception:
                pass


def export_shared(domain: Any) -> Optional[SharedExport]:
    """Export one materialized domain's columns for zero-copy worker
    access.  ``None`` when the domain is not encodable, not materialized
    (ranges and lazy products already pickle small), or its columns fail
    to serialize.  Degrades to an inline-payload ref (pickled bytes, no
    sharing) when shared memory is unavailable."""
    if isinstance(domain, SharedColumnarDomain):
        return None
    encoding = encoding_for(domain)
    if encoding is None or encoding.mode not in ("scalar", "record"):
        return None
    parts = _column_payloads(encoding)
    if parts is None:
        return None
    layout: List[Tuple[str, str, int, int]] = []
    offset = 0
    for name, kind, data in parts:
        layout.append((name, kind, offset, len(data)))
        offset += len(data)
    digest = getattr(domain, "_dist_digest", None)
    description = getattr(domain, "description", "") or \
        f"{encoding.n} objects"
    segment = None
    payload: Optional[bytes] = None
    try:
        from multiprocessing import shared_memory

        segment = shared_memory.SharedMemory(create=True,
                                             size=max(1, offset))
        cursor = 0
        for _name, _kind, data in parts:
            segment.buf[cursor:cursor + len(data)] = data
            cursor += len(data)
        name = segment.name.lstrip("/")
        ref = SharedColumnarDomain(
            segment=name, payload=None, layout=layout, n=encoding.n,
            scalar_kind=encoding.scalar_kind, fields=encoding.fields,
            description=description, digest=digest,
        )
        # The exporting process reads through the same attachment path
        # as workers (inline chunk fallback); prime its cache with the
        # owning handle so it never re-opens its own segment.
        with _ATTACH_LOCK:
            _ATTACHED[name] = segment
        return SharedExport(ref, segment, offset)
    except Exception:
        if segment is not None:
            try:
                segment.close()
                segment.unlink()
            except Exception:
                pass
        payload = b"".join(data for _name, _kind, data in parts)
        ref = SharedColumnarDomain(
            segment=None, payload=payload, layout=layout, n=encoding.n,
            scalar_kind=encoding.scalar_kind, fields=encoding.fields,
            description=description, digest=digest,
        )
        return SharedExport(ref, None, offset)


def release_attachments() -> None:
    """Close every cached worker-side attachment (tests, session end)."""
    with _ATTACH_LOCK:
        while _ATTACHED:
            _name, segment = _ATTACHED.popitem(last=False)
            try:
                segment.close()
            except Exception:
                pass
