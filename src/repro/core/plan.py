"""Predicate compilation and cost-based scan planning.

The sweep engine evaluates pFSM hidden-path conditions —
``¬spec ∧ impl`` — interpretively: every :class:`~repro.core.predicates.
Predicate` node is a Python closure calling ``evaluate`` on its
children, each call re-paying the exception shield and the attribute
indirection.  Structurally shared subpredicates across the corpus
(every model checking ``length(·) <= N`` and ``· does not contain
"%n"`` over the same probe strings) re-do identical work per model.

This module lowers the declarative *spec* terms of
:mod:`repro.core.predspec` into fused single-pass scan programs, in the
spirit of compiled query plans (Neumann, VLDB 2011) over the
interval-algebra machinery of :mod:`repro.core.predicates`:

* **Constant folding and flattening** — ``and``/``or`` chains become
  n-ary nodes, ``true``/``false`` units and double negations dissolve,
  structurally duplicate conjuncts dedupe.
* **Short-circuit reordering** — conjuncts are ordered by estimated
  ``cost / (1 - selectivity)`` (cheapest expected rejection first),
  disjuncts by ``cost / selectivity``; predicates are pure, so order is
  unobservable except in time.
* **Interval lowering** — comparison subtrees whose semantics are fully
  captured by their closed-form integer intervals collapse to a single
  membership test for ``int`` inputs (non-``int`` objects fall back to
  the general program, preserving the constructors' coercion rules).
* **Cross-task common-subexpression elimination** — every compiled node
  is keyed by its :func:`~repro.core.predspec.spec_digest`-style
  structural digest; once a digest is seen in two programs (or twice in
  one), it is promoted to *shared* and evaluated through a
  ``(digest, object)``-keyed :class:`NodeMemo`, so the shared subtree
  runs once per object across every task in a sweep.

Compiled :class:`ScanProgram` objects are verdict-equivalent to the
interpretive path, including its fail-secure exception semantics: the
interpreter shields every node (``evaluate`` maps exceptions to
``False``), while programs shield only where a propagating exception
could change the verdict — the program root, disjunct and negation
children, and memoized shared nodes.  Inside a pure conjunction an
exception propagating to the nearest shield yields ``False`` exactly
where the interpreter's ``False`` would land.

Programs are picklable (they ship as ``(spec, shared digests)`` and
recompile through the receiving process's :class:`PlanCache`), so
``mode="process"`` sweeps dispatch compiled plans inside their task
payloads and workers inherit the parent's CSE marks.

The planner can be bypassed wholesale (``set_enabled`` /
:func:`disabled` — the benchmark's A/B switch and the CLI's
``--no-plan``).
"""

from __future__ import annotations

import re
import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..obs import DEFAULT as _OBS
from .predicates import (
    IntervalSet,
    _FULL_LINE,
    _complement_intervals,
    _get,
    _intersect_intervals,
    _interval_contains,
    _normalize_intervals,
    _range_backing,
    _union_intervals,
)
from .predspec import _lookup_named, _resolve_type, decode_value, spec_digest

__all__ = [
    "NodeMemo",
    "PlanCache",
    "ScanPlan",
    "ScanProgram",
    "compile_spec",
    "describe_plan",
    "disabled",
    "hidden_spec",
    "is_enabled",
    "plan_cache",
    "plan_scan",
    "program_for",
    "reset",
    "set_enabled",
    "stats",
    "task_cost",
]


# ---------------------------------------------------------------------------
# Cost model.
#
# Units are arbitrary (roughly "one cheap comparison" == 0.4); only the
# *ordering* they induce matters — for conjunct/disjunct reordering and
# for the greedy-LPT chunker in :mod:`repro.core.dist`.  Selectivity is
# the estimated probability a node answers True.
# ---------------------------------------------------------------------------

_LEAF_COST: Dict[str, float] = {
    "true": 0.05, "false": 0.05, "truthy": 0.3, "eq": 0.4,
    "range": 0.5, "le": 0.4, "ge": 0.4, "lenle": 0.4,
    "contains": 1.0, "ncontains": 1.0, "matches": 3.0,
    "isa": 0.4, "named": 2.0,
}

_LEAF_SELECTIVITY: Dict[str, float] = {
    "true": 1.0, "false": 0.0, "truthy": 0.7, "eq": 0.05,
    "range": 0.3, "le": 0.5, "ge": 0.5, "lenle": 0.5,
    "contains": 0.3, "ncontains": 0.7, "matches": 0.3,
    "isa": 0.6, "named": 0.5,
}

#: Nodes cheaper than this are never CSE-memoized — the dict probe would
#: cost more than re-evaluating them.
_CSE_MIN_COST = 0.9

#: Estimated interpretive cost per object for uncompilable predicates
#: (two shielded ``Predicate.evaluate`` calls plus cache probes).
_INTERP_COST = 2.5


def _clamp(selectivity: float) -> float:
    return min(0.99, max(0.01, selectivity))


# ---------------------------------------------------------------------------
# The node tree: parsed, folded, annotated spec terms.
# ---------------------------------------------------------------------------

class _Node:
    """One node of a folded spec tree, annotated bottom-up."""

    __slots__ = ("op", "args", "children", "digest", "cost",
                 "selectivity", "intervals", "closed", "leaves")

    def __init__(self, op: str, args: Tuple[Any, ...] = (),
                 children: Tuple["_Node", ...] = ()) -> None:
        self.op = op
        self.args = args
        self.children = children
        self.digest = ""
        self.cost = 0.0
        self.selectivity = 0.5
        #: Closed-form integer denotation of the subtree, or ``None``.
        self.intervals: Optional[IntervalSet] = None
        #: True when, for ``int`` inputs, the subtree's verdict is fully
        #: decided by interval membership (the lowering precondition).
        self.closed = False
        self.leaves = 1


def _leaf(op: str, args: Tuple[Any, ...]) -> _Node:
    node = _Node(op, args)
    node.digest = spec_digest([op] + list(args))
    node.cost = _LEAF_COST.get(op, 1.0)
    node.selectivity = _LEAF_SELECTIVITY.get(op, 0.5)
    if op == "true":
        node.intervals, node.closed = _FULL_LINE, True
    elif op == "false":
        node.intervals, node.closed = (), True
    elif op == "range":
        low, high = args
        node.intervals = _normalize_intervals([(low, high)])
        node.closed = True
    elif op == "le":
        node.intervals, node.closed = ((None, args[0]),), True
    elif op == "ge":
        node.intervals, node.closed = ((args[0], None),), True
    elif op == "eq":
        expected = decode_value(args[0])
        if isinstance(expected, int) and not isinstance(expected, bool):
            node.intervals = ((expected, expected),)
            node.closed = True
    return node


def _make_not(child: _Node) -> _Node:
    node = _Node("not", (), (child,))
    node.digest = spec_digest(["not", child.digest])
    node.cost = child.cost + 0.02
    node.selectivity = 1.0 - child.selectivity
    if child.intervals is not None:
        node.intervals = _complement_intervals(child.intervals)
    node.closed = child.closed and node.intervals is not None
    node.leaves = child.leaves
    return node


def _make_attr(name: str, child: _Node) -> _Node:
    node = _Node("attr", (name,), (child,))
    node.digest = spec_digest(["attr", name, child.digest])
    node.cost = 0.3 + child.cost
    node.selectivity = child.selectivity
    node.leaves = child.leaves
    return node


def _make_junction(op: str, kids: List[_Node]) -> _Node:
    """An n-ary ``and``/``or`` with units folded, duplicates deduped,
    and children ordered for expected-cost short-circuiting."""
    absorbing = "false" if op == "and" else "true"
    identity = "true" if op == "and" else "false"
    unique: List[_Node] = []
    seen: Set[str] = set()
    for child in kids:
        if child.op == absorbing:
            return _leaf(absorbing, ())
        if child.op == identity or child.digest in seen:
            continue
        seen.add(child.digest)
        unique.append(child)
    if not unique:
        return _leaf(identity, ())
    if len(unique) == 1:
        return unique[0]
    node = _Node(op, (), ())
    # Order-insensitive digest: structurally equal junctions share an
    # identity however their source specs associated or ordered them.
    node.digest = spec_digest([op] + sorted(c.digest for c in unique))
    intervals = unique[0].intervals
    combine = _intersect_intervals if op == "and" else _union_intervals
    for child in unique[1:]:
        if intervals is None or child.intervals is None:
            intervals = None
            break
        intervals = combine(intervals, child.intervals)
    node.intervals = intervals
    node.closed = intervals is not None and all(c.closed for c in unique)
    node.leaves = sum(c.leaves for c in unique)
    if op == "and":
        unique.sort(key=lambda c: (
            c.cost / max(1e-6, 1.0 - _clamp(c.selectivity)), c.digest))
        reach, cost, sel = 1.0, 0.0, 1.0
        for child in unique:
            cost += reach * child.cost
            reach *= _clamp(child.selectivity)
            sel *= child.selectivity
    else:
        unique.sort(key=lambda c: (
            c.cost / max(1e-6, _clamp(c.selectivity)), c.digest))
        reach, cost, fail = 1.0, 0.0, 1.0
        for child in unique:
            cost += reach * child.cost
            reach *= 1.0 - _clamp(child.selectivity)
            fail *= 1.0 - child.selectivity
        sel = 1.0 - fail
    node.children = tuple(unique)
    node.cost = cost + 0.05 * len(unique)
    node.selectivity = sel
    return node


def _build(spec: Any) -> _Node:
    """Parse a predspec term into a folded, annotated node tree."""
    if not isinstance(spec, (list, tuple)) or not spec:
        raise ValueError(f"malformed spec term: {spec!r}")
    op = spec[0]
    if op == "not":
        child = _build(spec[1])
        if child.op == "true":
            return _leaf("false", ())
        if child.op == "false":
            return _leaf("true", ())
        if child.op == "not":
            return child.children[0]
        return _make_not(child)
    if op in ("and", "or"):
        kids: List[_Node] = []
        for sub in spec[1:]:
            child = _build(sub)
            if child.op == op:  # flatten nested chains into one n-ary node
                kids.extend(child.children)
            else:
                kids.append(child)
        return _make_junction(op, kids)
    if op == "attr":
        return _make_attr(spec[1], _build(spec[2]))
    return _leaf(op, tuple(spec[1:]))


# ---------------------------------------------------------------------------
# The per-object CSE memo.
# ---------------------------------------------------------------------------

class NodeMemo:
    """``(node digest, object) → verdict`` memo shared across the tasks
    of one sweep (or one dispatch chunk, or one fused serve batch).

    Deliberately lock-free: dict operations are atomic under the GIL and
    predicates are pure, so a racing double-computation is wasted work,
    never a wrong verdict.  ``hits``/``misses`` are advisory counters
    (drained into ``plan.cse.*``); the bound is enforced by a crude
    clear-on-overflow, keeping memory flat on adversarial domains.
    """

    __slots__ = ("data", "hits", "misses", "maxsize")

    def __init__(self, maxsize: int = 1 << 16) -> None:
        self.data: Dict[Tuple[str, Any], bool] = {}
        self.hits = 0
        self.misses = 0
        self.maxsize = maxsize

    def drain(self) -> Tuple[int, int]:
        """``(hits, misses)`` since the previous drain, resetting both."""
        hits, misses = self.hits, self.misses
        self.hits = 0
        self.misses = 0
        return hits, misses

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "size": len(self.data), "maxsize": self.maxsize}


# ---------------------------------------------------------------------------
# Emission: node trees → closures.
#
# Every emitted callable takes ``(obj, memo)`` where ``memo`` is a
# :class:`NodeMemo` or ``None``.  ``_emit_node`` returns ``(fn, safe)``
# — ``safe`` meaning the callable can never raise (already shielded).
# ---------------------------------------------------------------------------

_EmitFn = Callable[[Any, Optional[NodeMemo]], bool]


def _shield(fn: _EmitFn) -> _EmitFn:
    def shielded(obj: Any, memo: Optional[NodeMemo]) -> bool:
        try:
            return fn(obj, memo)
        except Exception:
            return False
    return shielded


def _cse_wrap(digest: str, inner: _EmitFn) -> _EmitFn:
    """Memoize a *shielded* node through the scan's :class:`NodeMemo`."""
    def memoized(obj: Any, memo: Optional[NodeMemo]) -> bool:
        if memo is None:
            return inner(obj, memo)
        try:
            key = (digest, obj)
            data = memo.data
            if key in data:
                memo.hits += 1
                return data[key]
        except TypeError:  # unhashable object — evaluate directly
            return inner(obj, memo)
        value = inner(obj, memo)
        memo.misses += 1
        if len(data) >= memo.maxsize:
            data.clear()
        data[key] = value
        return value
    return memoized


def _emit_leaf(node: _Node) -> _EmitFn:
    op, args = node.op, node.args
    if op == "true":
        return lambda obj, memo: True
    if op == "false":
        return lambda obj, memo: False
    if op == "truthy":
        return lambda obj, memo: bool(obj)
    if op == "eq":
        expected = decode_value(args[0])
        return lambda obj, memo: bool(obj == expected)
    if op == "range":
        low, high = args
        return lambda obj, memo: low <= int(obj) <= high
    if op == "le":
        bound = args[0]
        return lambda obj, memo: int(obj) <= bound
    if op == "ge":
        bound = args[0]
        return lambda obj, memo: int(obj) >= bound
    if op == "lenle":
        bound = args[0]
        return lambda obj, memo: len(obj) <= bound
    if op == "contains":
        needle = decode_value(args[0])
        return lambda obj, memo: needle in obj
    if op == "ncontains":
        needle = decode_value(args[0])
        return lambda obj, memo: needle not in obj
    if op == "matches":
        pattern = args[0]
        compiled = re.compile(pattern)
        encoded = pattern.encode("latin-1")

        def search(obj: Any, memo: Optional[NodeMemo]) -> bool:
            if isinstance(obj, bytes):
                return bool(re.search(encoded, obj))
            return bool(compiled.search(obj))
        return search
    if op == "isa":
        types = tuple(_resolve_type(mod, qual) for mod, qual in args[0])
        return lambda obj, memo: isinstance(obj, types)
    if op == "named":
        evaluate = _lookup_named(args[0], args[1]).evaluate
        return lambda obj, memo: evaluate(obj)  # self-shields
    raise ValueError(f"unknown spec operator: {op!r}")


def _emit_raw(node: _Node, shared: Set[str], ctx: Dict[str, int]) -> _EmitFn:
    """The node's evaluator, *without* CSE wrapping or an own shield."""
    op = node.op
    if node.closed and node.children and node.leaves >= 2:
        # Interval lowering: the whole comparison subtree is one
        # membership test for exact ints.  The guard is ``type(obj) is
        # int`` because the comparison constructors coerce (``int(obj)``)
        # while ``eq`` does not — non-int objects must take the general
        # program to reproduce that asymmetry (bools included: ``eq``
        # over bools never gets an interval form).
        intervals = node.intervals
        general = _emit_general(node, shared, ctx)
        ctx["lowered"] += 1

        def fused(obj: Any, memo: Optional[NodeMemo]) -> bool:
            if type(obj) is int:
                return _interval_contains(intervals, obj)
            return general(obj, memo)
        return fused
    return _emit_general(node, shared, ctx)


def _emit_general(node: _Node, shared: Set[str],
                  ctx: Dict[str, int]) -> _EmitFn:
    op = node.op
    if op == "and":
        fns = [_emit_node(c, shared, ctx)[0] for c in node.children]
        if len(fns) == 2:
            first, second = fns
            return lambda obj, memo: first(obj, memo) and second(obj, memo)

        def conjunction(obj: Any, memo: Optional[NodeMemo]) -> bool:
            for fn in fns:
                if not fn(obj, memo):
                    return False
            return True
        return conjunction
    if op == "or":
        fns = [_emit_shielded(c, shared, ctx) for c in node.children]
        if len(fns) == 2:
            first, second = fns
            return lambda obj, memo: first(obj, memo) or second(obj, memo)

        def disjunction(obj: Any, memo: Optional[NodeMemo]) -> bool:
            for fn in fns:
                if fn(obj, memo):
                    return True
            return False
        return disjunction
    if op == "not":
        inner = _emit_shielded(node.children[0], shared, ctx)
        return lambda obj, memo: not inner(obj, memo)
    if op == "attr":
        inner = _emit_node(node.children[0], shared, ctx)[0]
        name = node.args[0]
        return lambda obj, memo: inner(_get(obj, name), memo)
    return _emit_leaf(node)


def _emit_node(node: _Node, shared: Set[str],
               ctx: Dict[str, int]) -> Tuple[_EmitFn, bool]:
    """``(fn, safe)`` — shared nodes come back memoized and shielded."""
    raw = _emit_raw(node, shared, ctx)
    if node.digest in shared and node.cost >= _CSE_MIN_COST:
        ctx["cse"] += 1
        return _cse_wrap(node.digest, _shield(raw)), True
    return raw, False


def _emit_shielded(node: _Node, shared: Set[str],
                   ctx: Dict[str, int]) -> _EmitFn:
    fn, safe = _emit_node(node, shared, ctx)
    return fn if safe else _shield(fn)


# ---------------------------------------------------------------------------
# Compiled programs.
# ---------------------------------------------------------------------------

class ScanProgram:
    """A predicate spec fused into one shielded single-pass evaluator.

    ``evaluate(obj, memo)`` is verdict-identical to building the spec's
    predicate via :func:`repro.core.predspec.from_spec` and calling it
    — see the module header for the exception-semantics argument.
    Pickling ships ``(spec, shared digests)`` and recompiles through the
    receiving process's :class:`PlanCache`, carrying the sender's CSE
    marks along.
    """

    __slots__ = ("spec", "digest", "cost", "selectivity", "leaves",
                 "lowered", "cse_nodes", "shared", "_fn")

    def __init__(self, spec: Any, digest: str, fn: _EmitFn, cost: float,
                 selectivity: float, leaves: int, lowered: int,
                 cse_nodes: int, shared: frozenset) -> None:
        self.spec = spec
        self.digest = digest
        self.cost = cost
        self.selectivity = selectivity
        self.leaves = leaves
        self.lowered = lowered
        self.cse_nodes = cse_nodes
        self.shared = shared
        self._fn = fn

    def evaluate(self, obj: Any, memo: Optional[NodeMemo] = None) -> bool:
        return self._fn(obj, memo)

    def __call__(self, obj: Any) -> bool:
        return self._fn(obj, None)

    def __reduce__(self):
        return (_rebuild_program, (self.spec, tuple(sorted(self.shared))))

    def __repr__(self) -> str:
        return (f"ScanProgram(digest={self.digest[:12]}, "
                f"cost={self.cost:.2f}, leaves={self.leaves}, "
                f"cse={self.cse_nodes}, lowered={self.lowered})")


class PlanCache:
    """Bounded, stats-instrumented LRU of compiled programs, keyed by
    the root node's structural digest."""

    def __init__(self, maxsize: int = 256) -> None:
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self._data: "OrderedDict[str, ScanProgram]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.compiles = 0
        self.cse_promotions = 0

    def __len__(self) -> int:
        return len(self._data)

    def get(self, digest: str) -> Optional[ScanProgram]:
        with self._lock:
            program = self._data.get(digest)
            if program is not None:
                self._data.move_to_end(digest)
                self.hits += 1
            else:
                self.misses += 1
        if _OBS.enabled:
            _OBS.incr("plan.cache.hits" if program is not None
                      else "plan.cache.misses")
        return program

    def put(self, digest: str, program: ScanProgram) -> None:
        evicted = 0
        with self._lock:
            self._data[digest] = program
            self._data.move_to_end(digest)
            self.compiles += 1
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.evictions += 1
                evicted += 1
        if _OBS.enabled:
            _OBS.incr("plan.compiles")
            if evicted:
                _OBS.incr("plan.cache.evictions", evicted)

    def discard(self, digest: str) -> None:
        with self._lock:
            self._data.pop(digest, None)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "compiles": self.compiles,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "cse_promotions": self.cse_promotions,
                "size": len(self._data),
                "maxsize": self.maxsize,
            }


_CACHE = PlanCache()


def plan_cache() -> PlanCache:
    """The process-wide compiled-program cache."""
    return _CACHE


# ---------------------------------------------------------------------------
# Cross-task CSE registry.
#
# Node digests are counted across every compiled root; a digest seen in
# two distinct roots (or twice inside one) is promoted to *shared*, and
# stale programs compiled before the promotion are evicted so their next
# use recompiles with the memo wrapper in place.
# ---------------------------------------------------------------------------

_STATE_LOCK = threading.RLock()
_SHARED: Set[str] = set()
_NODE_ROOTS: Dict[str, Set[str]] = {}
#: Bumped whenever the shared set changes (promotion, pickle import,
#: reset) — validates per-pFSM program memos.
_GENERATION = 0

_ENABLED = True


def is_enabled() -> bool:
    """Is the planner active? (see :func:`set_enabled`)."""
    return _ENABLED


def set_enabled(on: bool) -> None:
    """Globally enable/bypass the planner (``repro sweep --no-plan``)."""
    global _ENABLED
    _ENABLED = bool(on)


@contextmanager
def disabled():
    """Temporarily bypass the planner — the benchmark's A/B switch."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = False
    try:
        yield
    finally:
        _ENABLED = previous


def reset() -> None:
    """Fresh planner state: empty cache, no CSE marks (tests, benches)."""
    global _GENERATION
    with _STATE_LOCK:
        _CACHE.clear()
        _SHARED.clear()
        _NODE_ROOTS.clear()
        _GENERATION += 1  # never reuse a generation: stale memos miss


def stats() -> Dict[str, Any]:
    """PlanCache counters plus the CSE registry's shared-node count."""
    payload = _CACHE.stats()
    with _STATE_LOCK:
        payload["shared_nodes"] = len(_SHARED)
    return payload


def _node_costs(root: _Node) -> Dict[str, Tuple[int, float]]:
    """``digest → (occurrences within this root, cost)`` for every node
    expensive enough to be a CSE candidate."""
    counts: Dict[str, Tuple[int, float]] = {}
    stack = [root]
    while stack:
        node = stack.pop()
        if node.cost >= _CSE_MIN_COST:
            seen, _cost = counts.get(node.digest, (0, 0.0))
            counts[node.digest] = (seen + 1, node.cost)
        stack.extend(node.children)
    return counts


def _register_root(root: _Node) -> Set[str]:
    """Fold one root's nodes into the CSE registry; returns the digests
    (of this tree) that are shared and must compile memoized.  Evicts
    programs made stale by a fresh promotion."""
    global _GENERATION
    root_digest = root.digest
    counts = _node_costs(root)
    shared_here: Set[str] = set()
    stale_roots: Set[str] = set()
    promotions = 0
    with _STATE_LOCK:
        for digest, (occurrences, _cost) in counts.items():
            if digest == root_digest:
                continue
            roots = _NODE_ROOTS.setdefault(digest, set())
            roots.add(root_digest)
            if digest not in _SHARED and (occurrences >= 2 or len(roots) >= 2):
                _SHARED.add(digest)
                promotions += 1
                stale_roots.update(r for r in roots if r != root_digest)
            if digest in _SHARED:
                shared_here.add(digest)
        if promotions:
            _GENERATION += 1
            _CACHE.cse_promotions += promotions
    for stale in stale_roots:
        _CACHE.discard(stale)
    if promotions and _OBS.enabled:
        _OBS.incr("plan.cse.shared", promotions)
    return shared_here


def compile_spec(spec: Any) -> ScanProgram:
    """Compile a predspec term into a :class:`ScanProgram` (cached).

    Raises for malformed terms and unresolvable named predicates —
    callers on hot paths go through :func:`program_for`, which degrades
    to ``None`` (interpretive fallback) instead.
    """
    root = _build(spec)
    cached = _CACHE.get(root.digest)
    if cached is not None:
        return cached
    shared_here = _register_root(root)
    ctx = {"lowered": 0, "cse": 0}
    fn, safe = _emit_node(root, shared_here, ctx)
    if not safe:
        fn = _shield(fn)
    program = ScanProgram(
        spec=spec, digest=root.digest, fn=fn, cost=root.cost,
        selectivity=root.selectivity, leaves=root.leaves,
        lowered=ctx["lowered"], cse_nodes=ctx["cse"],
        shared=frozenset(shared_here),
    )
    _CACHE.put(root.digest, program)
    return program


def _rebuild_program(spec: Any, shared_digests: Sequence[str]
                     ) -> Optional[ScanProgram]:
    """Unpickle hook: import the sender's CSE marks, then recompile
    through this process's cache.  Degrades to ``None`` (the payload's
    task still runs interpretively) rather than poisoning the chunk."""
    global _GENERATION
    if shared_digests:
        with _STATE_LOCK:
            before = len(_SHARED)
            _SHARED.update(shared_digests)
            if len(_SHARED) != before:
                _GENERATION += 1
    try:
        return compile_spec(spec)
    except Exception:
        return None


# ---------------------------------------------------------------------------
# The planner: strategy selection and cost estimation per scan task.
# ---------------------------------------------------------------------------

def hidden_spec(pfsm: Any) -> Optional[Any]:
    """The predspec term of the pFSM's hidden set ``¬spec ∧ impl`` —
    ``None`` when either predicate is opaque (not compilable)."""
    spec = getattr(pfsm.spec_accepts, "spec", None)
    if spec is None:
        return None
    impl = pfsm.impl_accepts
    if impl is None:  # no check at all accepts everything
        return ["not", spec]
    impl_spec = getattr(impl, "spec", None)
    if impl_spec is None:
        return None
    return ["and", ["not", spec], impl_spec]


def program_for(pfsm: Any) -> Optional[ScanProgram]:
    """The compiled hidden-set program of one pFSM, or ``None`` when the
    planner is bypassed or the pFSM is not compilable.

    Memoized on the pFSM object, validated against both predicates'
    mutation-aware cache keys and the CSE generation (a promotion
    elsewhere in the corpus invalidates the memo so the program picks up
    its memo wrappers).
    """
    if not _ENABLED:
        return None
    impl = pfsm.impl_accepts
    stamp = (pfsm.spec_accepts.cache_key,
             impl.cache_key if impl is not None else None,
             _GENERATION)
    memo = getattr(pfsm, "_plan_program", None)
    if memo is not None and memo[0] == stamp:
        return memo[1]
    term = hidden_spec(pfsm)
    program: Optional[ScanProgram] = None
    if term is not None:
        try:
            program = compile_spec(term)
        except Exception:
            program = None
    try:
        object.__setattr__(pfsm, "_plan_program", (stamp, program))
    except Exception:
        pass
    return program


def _hidden_interval_set(pfsm: Any) -> Optional[IntervalSet]:
    """Interval form of ``¬spec ∧ impl`` (the machinery behind
    ``sweep._hidden_intervals``), or ``None`` if either side is opaque."""
    spec_iv = pfsm.spec_accepts.intervals
    if spec_iv is None:
        return None
    impl = pfsm.impl_accepts
    impl_iv = _FULL_LINE if impl is None else impl.intervals
    if impl_iv is None:
        return None
    return _intersect_intervals(_complement_intervals(spec_iv), impl_iv)


def _domain_size(domain: Any, default: int = 1024) -> int:
    try:
        return len(domain)
    except TypeError:
        return default


@dataclass(frozen=True)
class ScanPlan:
    """The planner's verdict for one ``(pfsm, domain)`` scan task."""

    strategy: str  # "interval" | "columnar" | "compiled" | "cached" | "plain"
    program: Optional[ScanProgram]
    est_cost: float
    est_objects: int
    reason: str


#: Per-object cost discount of a columnar mask pass relative to the
#: compiled scalar program (measured: vectorized compares amortize
#: dispatch to well under a tenth with numpy, roughly half pure-stdlib).
_COLUMNAR_NUMPY_FACTOR = 0.05
_COLUMNAR_STDLIB_FACTOR = 0.4


def plan_scan(pfsm: Any, domain: Any, limit: int = 10,
              cache_available: bool = True) -> ScanPlan:
    """Pick the scan strategy and estimate its cost.

    Dominance order: closed-form **interval** algebra (O(limit)) ≻
    **columnar** whole-domain mask pass ≻ **compiled** program ≻
    **cached** interpretive scan ≻ **plain** interpretive scan.  This
    mirrors the dispatch in
    :func:`repro.core.sweep.hidden_witness_scan`; the cost estimates
    additionally size chunks in :mod:`repro.core.dist` and surface
    through ``repro sweep --explain``.
    """
    objects = _domain_size(domain)
    if _range_backing(domain) is not None:
        if _hidden_interval_set(pfsm) is not None:
            return ScanPlan(
                strategy="interval", program=None,
                est_cost=float(max(1, min(limit, objects))),
                est_objects=objects,
                reason="closed-form interval algebra over a range-backed "
                       "domain (O(limit), independent of domain size)",
            )
    program = program_for(pfsm)
    if program is not None:
        try:
            from . import columnar as _columnar

            vectorizes = _columnar.kernel_available(program, domain)
        except Exception:
            vectorizes = False
        if vectorizes:
            backend = "numpy" if _columnar.using_numpy() else "stdlib"
            factor = (_COLUMNAR_NUMPY_FACTOR if backend == "numpy"
                      else _COLUMNAR_STDLIB_FACTOR)
            return ScanPlan(
                strategy="columnar", program=program,
                est_cost=max(1.0, program.cost * objects * factor),
                est_objects=objects,
                reason=f"whole-column mask pass over the domain's "
                       f"struct-of-arrays encoding ({backend} kernels, "
                       f"{program.leaves} leaves)",
            )
        return ScanPlan(
            strategy="compiled", program=program,
            est_cost=max(1.0, program.cost * objects),
            est_objects=objects,
            reason=f"fused single-pass program over {program.leaves} "
                   f"leaves ({program.cse_nodes} shared, "
                   f"{program.lowered} interval-lowered)",
        )
    strategy = "cached" if cache_available else "plain"
    return ScanPlan(
        strategy=strategy, program=None,
        est_cost=max(1.0, _INTERP_COST * objects),
        est_objects=objects,
        reason="opaque predicate — interpretive scan"
               + (" through the predicate cache" if cache_available else ""),
    )


def task_cost(task: Sequence[Any]) -> Optional[float]:
    """Plan-estimated cost units of one sweep task, for the greedy-LPT
    chunker — ``None`` when the planner is bypassed (the chunker falls
    back to domain cardinality)."""
    if not _ENABLED:
        return None
    try:
        _model, _operation, pfsm, domain, limit = task
        return max(1.0, plan_scan(pfsm, domain, limit).est_cost)
    except Exception:
        return None


def describe_plan(pfsm: Any, domain: Any, limit: int = 10,
                  cache_available: bool = True) -> Dict[str, Any]:
    """JSON-ready plan description for ``repro sweep --explain``."""
    chosen = plan_scan(pfsm, domain, limit, cache_available)
    payload: Dict[str, Any] = {
        "strategy": chosen.strategy,
        "est_cost": round(chosen.est_cost, 2),
        "objects": chosen.est_objects,
        "reason": chosen.reason,
    }
    program = chosen.program
    if program is not None:
        payload.update({
            "digest": program.digest[:12],
            "program_cost": round(program.cost, 3),
            "selectivity": round(program.selectivity, 3),
            "leaves": program.leaves,
            "lowered_nodes": program.lowered,
            "cse_nodes": program.cse_nodes,
        })
    return payload
