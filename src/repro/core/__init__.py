"""The pFSM modeling methodology — the paper's primary contribution.

Public surface:

* :class:`~repro.core.pfsm.PrimitiveFSM` — the predicate-defined unit of
  Figure 2, with hidden-path (vulnerability) detection.
* :class:`~repro.core.operation.Operation` — a series of pFSMs over one
  object (Observation 2).
* :class:`~repro.core.machine.VulnerabilityModel` — cascaded operations
  joined by :class:`~repro.core.machine.PropagationGate` triangles.
* :mod:`~repro.core.predicates` — the composable predicate algebra the
  pFSMs are defined over (Observation 3).
* :mod:`~repro.core.analysis` — hidden-path reports, minimal foil
  points, and the Section 6 Lemma as executable checks.
* :class:`~repro.core.discovery.DiscoveryEngine` — the §5.1 workflow
  that surfaced Bugtraq #6255.
* :mod:`~repro.core.classification` — the three generic pFSM types
  (Figure 8) and the 12 Bugtraq categories (Figure 1).
"""

from .autotool import ActivityAdapter, ActivityVerdict, AnalysisReport, AutoAnalyzer
from .catalog import CatalogEntry, PREDICATE_CATALOG, entries_for_activity
from .metrics import (
    ModelMetrics,
    PfsmRates,
    WeightedDomain,
    compromise_probability,
    evaluate_model,
    exposure_ratio,
    mean_effort_to_foil,
    pfsm_rates,
)
from .columnar import (
    EncodingCache,
    SharedColumnarDomain,
    encoding_for,
)
from .dist import (
    InProcessQueue,
    ResultStore,
    domain_digest,
    task_key,
)
from .plan import (
    NodeMemo,
    PlanCache,
    ScanPlan,
    ScanProgram,
    compile_spec,
    describe_plan,
    plan_cache,
    plan_scan,
    program_for,
)
from .predspec import (
    UnknownPredicateError,
    from_spec,
    named_predicate,
    spec_digest,
    to_spec,
)
from .serialize import (
    model_fingerprint,
    model_to_dict,
    model_to_json,
    operation_to_dict,
    pfsm_to_dict,
    result_to_dict,
    sweep_task_fingerprint,
    trace_to_dict,
)
from .statespace import StateSpace, build_state_space
from .sweep import (
    NO_CACHE,
    ModelSweep,
    PredicateCache,
    SweepFinding,
    cached_evaluate,
    hidden_witness_count,
    hidden_witness_scan,
    shared_cache,
    sweep_model,
    sweep_models,
    sweep_operation,
)
from .analysis import (
    FoilPoint,
    minimal_witness,
    HiddenPathFinding,
    LemmaReport,
    check_lemma_part1,
    check_lemma_part2,
    hidden_path_report,
    minimal_foil_points,
    verify_lemma,
)
from .builder import ModelBuilder
from .classification import (
    ActivityKind,
    BugtraqCategory,
    CATEGORY_DEFINITIONS,
    PfsmType,
    categorize_by_activity,
)
from .discovery import DiscoveryEngine, Finding, ProbeResult, probe_implementation
from .machine import ModelResult, PropagationGate, VulnerabilityModel
from .operation import Operation, OperationResult
from .pfsm import PfsmOutcome, PrimitiveFSM
from .predicates import (
    Predicate,
    always,
    attr,
    contains,
    equals,
    greater_equal,
    in_range,
    is_instance,
    length_le,
    less_equal,
    matches,
    never,
    not_contains,
    predicate,
    satisfies_all,
    satisfies_any,
    truthy,
)
from .render import render_model, render_operation, render_pfsm, to_dot
from .trace import EventKind, ExploitTrace, TraceEvent
from .transitions import DIAMOND, Label, StateKind, Transition, TransitionKind
from .witness import Domain

__all__ = [
    "ActivityAdapter",
    "ActivityVerdict",
    "AnalysisReport",
    "AutoAnalyzer",
    "CatalogEntry",
    "PREDICATE_CATALOG",
    "entries_for_activity",
    "ModelMetrics",
    "PfsmRates",
    "WeightedDomain",
    "compromise_probability",
    "evaluate_model",
    "exposure_ratio",
    "mean_effort_to_foil",
    "pfsm_rates",
    "model_fingerprint",
    "model_to_dict",
    "model_to_json",
    "operation_to_dict",
    "pfsm_to_dict",
    "result_to_dict",
    "sweep_task_fingerprint",
    "trace_to_dict",
    "InProcessQueue",
    "ResultStore",
    "domain_digest",
    "task_key",
    "EncodingCache",
    "SharedColumnarDomain",
    "encoding_for",
    "NodeMemo",
    "PlanCache",
    "ScanPlan",
    "ScanProgram",
    "compile_spec",
    "describe_plan",
    "plan_cache",
    "plan_scan",
    "program_for",
    "UnknownPredicateError",
    "from_spec",
    "named_predicate",
    "spec_digest",
    "to_spec",
    "StateSpace",
    "build_state_space",
    "NO_CACHE",
    "ModelSweep",
    "PredicateCache",
    "SweepFinding",
    "cached_evaluate",
    "hidden_witness_count",
    "hidden_witness_scan",
    "shared_cache",
    "sweep_model",
    "sweep_models",
    "sweep_operation",
    "FoilPoint",
    "HiddenPathFinding",
    "LemmaReport",
    "check_lemma_part1",
    "check_lemma_part2",
    "hidden_path_report",
    "minimal_foil_points",
    "minimal_witness",
    "verify_lemma",
    "ModelBuilder",
    "ActivityKind",
    "BugtraqCategory",
    "CATEGORY_DEFINITIONS",
    "PfsmType",
    "categorize_by_activity",
    "DiscoveryEngine",
    "Finding",
    "ProbeResult",
    "probe_implementation",
    "ModelResult",
    "PropagationGate",
    "VulnerabilityModel",
    "Operation",
    "OperationResult",
    "PfsmOutcome",
    "PrimitiveFSM",
    "Predicate",
    "always",
    "attr",
    "contains",
    "equals",
    "greater_equal",
    "in_range",
    "is_instance",
    "length_le",
    "less_equal",
    "matches",
    "never",
    "not_contains",
    "predicate",
    "satisfies_all",
    "satisfies_any",
    "truthy",
    "render_model",
    "render_operation",
    "render_pfsm",
    "to_dot",
    "EventKind",
    "ExploitTrace",
    "TraceEvent",
    "DIAMOND",
    "Label",
    "StateKind",
    "Transition",
    "TransitionKind",
    "Domain",
]
