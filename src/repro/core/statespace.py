"""Explicit state-space construction and reachability analysis.

The paper positions its FSM models as objects to *reason over* and
cites symbolic model checking of attack graphs [18] as related work.
This module makes that reasoning mechanical: a
:class:`~repro.core.machine.VulnerabilityModel` unrolls into an explicit
directed graph whose nodes are ``(operation, pFSM, StateKind)`` triples
plus the terminal consequence, and whose edges are the Figure 2
transitions that *exist* for the given implementation.

Queries answered over the graph (networkx):

* :meth:`StateSpace.compromise_reachable` — can the terminal
  consequence be reached through at least one hidden edge?  (The
  model-checking formulation of "a vulnerability exists".)
* :meth:`StateSpace.exploit_paths` — every loop-free path from entry to
  the terminal that uses ≥1 hidden edge, i.e. the complete catalog of
  qualitatively distinct exploits the model admits.
* :meth:`StateSpace.cut_set` — a minimal set of hidden edges whose
  removal (= installing those checks) disconnects the terminal: the
  graph-theoretic form of the paper's Lemma part 2.

The unrolled graph is *implementation-indexed*: securing a pFSM and
rebuilding yields a graph without that hidden edge, so reachability
before/after is exactly the foil question.

Abstraction note: the graph is a sound *over-approximation*.  Branch
choices are nondeterministic — it forgets that a gate's data flow may
force a downstream pFSM onto its SPEC_REJ arm after an upstream
exploit (e.g. once ``addr_setuid`` is corrupted, the consistency pFSM
cannot take SPEC_ACPT).  Consequently ``compromise_reachable`` may stay
true after removing a single hidden edge even when the concrete model
is foiled; exact single-fix reasoning is
:func:`repro.core.analysis.minimal_foil_points`.  What the graph
guarantees: no hidden edges ⇒ no compromise, and every concrete exploit
corresponds to some graph path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx

from .machine import VulnerabilityModel
from .pfsm import PrimitiveFSM
from .transitions import StateKind, TransitionKind
from .witness import Domain

__all__ = ["Node", "StateSpace", "build_state_space"]

#: Node labels.
ENTRY = "ENTRY"
COMPROMISED = "COMPROMISED"
FOILED = "FOILED"


@dataclass(frozen=True)
class Node:
    """A state of the unrolled model: which pFSM, which Figure 2 state."""

    operation: str
    pfsm: str
    state: StateKind

    def label(self) -> str:
        """Graph key."""
        return f"{self.operation}/{self.pfsm}/{self.state.name}"


class StateSpace:
    """The unrolled graph of one model, with reachability queries."""

    def __init__(self, model: VulnerabilityModel, graph: nx.DiGraph) -> None:
        self.model = model
        self.graph = graph

    # -- structural queries ------------------------------------------------

    @property
    def node_count(self) -> int:
        """Total states (including entry/terminal markers)."""
        return self.graph.number_of_nodes()

    @property
    def edge_count(self) -> int:
        """Total transitions."""
        return self.graph.number_of_edges()

    def hidden_edges(self) -> List[Tuple[str, str]]:
        """Edges tagged as IMPL_ACPT hidden paths."""
        return [
            (u, v)
            for u, v, data in self.graph.edges(data=True)
            if data.get("hidden")
        ]

    def edge_owner(self, edge: Tuple[str, str]) -> Tuple[str, str]:
        """The ``(operation, pfsm)`` a hidden edge belongs to."""
        data = self.graph.edges[edge]
        return (data["operation"], data["pfsm"])

    # -- reachability -----------------------------------------------------------

    def compromise_reachable(self) -> bool:
        """Is the terminal consequence reachable *via a hidden edge*?

        Plain reachability is not enough — a fully-secure model still
        reaches the terminal through spec-accept edges (benign
        completion).  The vulnerability question is whether some path
        uses at least one dotted transition.
        """
        return any(
            self._path_exists_through(edge) for edge in self.hidden_edges()
        )

    def _path_exists_through(self, edge: Tuple[str, str]) -> bool:
        u, v = edge
        return (
            nx.has_path(self.graph, ENTRY, u)
            and nx.has_path(self.graph, v, COMPROMISED)
        )

    def exploit_paths(
        self,
        limit: int = 64,
        cutoff: Optional[int] = None,
        max_paths: Optional[int] = None,
    ) -> List[List[str]]:
        """All loop-free ENTRY→COMPROMISED paths using ≥1 hidden edge.

        ``limit`` caps the *returned* hidden paths; on gate-rich graphs
        that alone cannot stop ``nx.all_simple_paths`` from enumerating
        an exponential sea of benign candidates, so two guards bound the
        enumeration itself: ``cutoff`` (max path length in edges, passed
        straight to networkx so longer paths are never generated) and
        ``max_paths`` (max candidate paths examined, hidden or not).
        """
        paths: List[List[str]] = []
        examined = 0
        for path in nx.all_simple_paths(self.graph, ENTRY, COMPROMISED,
                                        cutoff=cutoff):
            if self._uses_hidden(path):
                paths.append(path)
                if len(paths) >= limit:
                    break
            examined += 1
            if max_paths is not None and examined >= max_paths:
                break
        return paths

    def _uses_hidden(self, path: Sequence[str]) -> bool:
        return any(
            self.graph.edges[u, v].get("hidden")
            for u, v in zip(path, path[1:])
        )

    def benign_path_exists(self) -> bool:
        """Is the terminal reachable without any hidden edge?  (Securing
        must not break legitimate completion.)"""
        pruned = nx.restricted_view(self.graph, [], self.hidden_edges())
        return nx.has_path(pruned, ENTRY, COMPROMISED)

    # -- cuts (the Lemma, graph-theoretically) -------------------------------------

    def cut_set(
        self,
        limit: int = 64,
        cutoff: Optional[int] = None,
        max_paths: Optional[int] = None,
    ) -> List[Tuple[str, str]]:
        """A minimal set of hidden edges whose removal makes the
        compromise unreachable-via-hidden-paths.

        Greedy: repeatedly remove the hidden edge lying on the most
        surviving exploit paths.  For the paper's chain-shaped models
        this yields singleton cuts per independent chain — Observation 1
        in graph form.

        The greedy loop mutates a single working graph and covers the
        enumerated path set in memory — removing an edge only ever
        *shrinks* the path set, so surviving paths are re-derived by a
        list filter instead of re-running ``nx.all_simple_paths`` per
        removed edge; the enumerator runs once per drained batch.
        ``limit``/``cutoff``/``max_paths`` thread through to
        :meth:`exploit_paths` so the enumeration stays bounded on
        gate-rich graphs.
        """
        working = self.graph.copy()
        removed: List[Tuple[str, str]] = []
        while True:
            space = StateSpace(self.model, working)
            paths = space.exploit_paths(limit=limit, cutoff=cutoff,
                                        max_paths=max_paths)
            if not paths:
                return removed
            while paths:
                tally: Dict[Tuple[str, str], int] = {}
                for path in paths:
                    for u, v in zip(path, path[1:]):
                        if working.edges[u, v].get("hidden"):
                            tally[(u, v)] = tally.get((u, v), 0) + 1
                if not tally:
                    break  # defensive: exploit paths always use a hidden edge
                best = max(tally, key=lambda e: tally[e])
                working.remove_edge(*best)
                removed.append(best)
                paths = [
                    path for path in paths
                    if best not in zip(path, path[1:])
                ]

    def without_hidden_edge(self, operation: str, pfsm: str) -> "StateSpace":
        """The space with one pFSM's hidden edge removed — equivalent to
        installing that check.  Backed by a read-only restricted view of
        the same graph (no copy); reachability and path queries work
        unchanged, and mutating operations like :meth:`cut_set` take
        their own working copy anyway."""
        blocked = [
            (u, v)
            for u, v, data in self.graph.edges(data=True)
            if data.get("hidden") and data.get("operation") == operation
            and data.get("pfsm") == pfsm
        ]
        pruned = nx.restricted_view(self.graph, [], blocked)
        return StateSpace(self.model, pruned)

    # -- export ---------------------------------------------------------------------

    def to_dot(self) -> str:
        """Graphviz rendering of the unrolled space."""
        lines = [f'digraph "{self.model.name} (state space)" {{',
                 "  rankdir=LR;"]
        for node in self.graph.nodes:
            shape = "box" if node in (ENTRY, COMPROMISED, FOILED) else "circle"
            lines.append(f'  "{node}" [shape={shape}];')
        for u, v, data in self.graph.edges(data=True):
            style = ' [style=dashed, color=red]' if data.get("hidden") else ""
            lines.append(f'  "{u}" -> "{v}"{style};')
        lines.append("}")
        return "\n".join(lines)


def build_state_space(
    model: VulnerabilityModel,
    domains: Optional[Dict[str, Domain]] = None,
) -> StateSpace:
    """Unroll a model into its explicit state graph.

    Edges exist per the *implementation*: SPEC_ACPT and SPEC_REJ always;
    IMPL_REJ when the pFSM has a check; the hidden IMPL_ACPT edge when
    the implementation diverges from the spec.  Divergence is decided
    semantically when a domain for the pFSM is supplied (witness
    search); otherwise structurally (a missing or non-spec-equal check
    is assumed divergent) — the conservative reading.
    """
    domains = domains or {}
    graph = nx.DiGraph()
    graph.add_node(ENTRY)
    graph.add_node(COMPROMISED)
    graph.add_node(FOILED)

    previous_accept = ENTRY
    for operation in model.operations:
        for pfsm in operation.pfsms:
            check = Node(operation.name, pfsm.name, StateKind.SPEC_CHECK)
            accept = Node(operation.name, pfsm.name, StateKind.ACCEPT)
            reject = Node(operation.name, pfsm.name, StateKind.REJECT)
            for node in (check, accept, reject):
                graph.add_node(node.label())
            graph.add_edge(previous_accept, check.label(),
                           kind="chain", operation=operation.name,
                           pfsm=pfsm.name)
            graph.add_edge(check.label(), accept.label(),
                           kind=TransitionKind.SPEC_ACPT.value,
                           operation=operation.name, pfsm=pfsm.name)
            graph.add_edge(check.label(), reject.label(),
                           kind=TransitionKind.SPEC_REJ.value,
                           operation=operation.name, pfsm=pfsm.name)
            if pfsm.has_check:
                graph.add_edge(reject.label(), FOILED,
                               kind=TransitionKind.IMPL_REJ.value,
                               operation=operation.name, pfsm=pfsm.name)
            if _diverges(pfsm, domains.get(pfsm.name)):
                graph.add_edge(reject.label(), accept.label(),
                               kind=TransitionKind.IMPL_ACPT.value,
                               hidden=True,
                               operation=operation.name, pfsm=pfsm.name)
            previous_accept = accept.label()
    graph.add_edge(previous_accept, COMPROMISED, kind="terminal")
    return StateSpace(model, graph)


def _diverges(pfsm: PrimitiveFSM, domain: Optional[Domain]) -> bool:
    """Does the implementation accept something the spec rejects?"""
    if domain is not None:
        return pfsm.has_hidden_path(domain)
    if not pfsm.has_check:
        return True
    # Structural fallback: identical predicate objects are equal; other
    # checks are conservatively assumed divergent.
    return pfsm.impl_accepts is not pfsm.spec_accepts
