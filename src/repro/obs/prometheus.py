"""Prometheus text exposition (format 0.0.4) for the serving layer.

Three pieces:

* :class:`Histogram` — a thread-safe cumulative-bucket histogram with
  configurable bucket bounds, the replacement for quantile gauges on
  ``GET /metrics`` (nearest-rank p50/p95 from ``LatencyWindow`` remain
  available on the JSON snapshot; Prometheus wants raw buckets so the
  server can aggregate across replicas).
* :func:`render_exposition` — counters / gauges / histogram snapshots →
  the ``# HELP`` / ``# TYPE`` text format, with metric names sanitized
  from the repo's dotted convention (``requests.query`` →
  ``repro_serve_requests_query_total``).
* :func:`parse_exposition` — a small validating parser for the same
  format, used by tests and the CI ``trace-smoke`` step to check the
  endpoint really speaks Prometheus (no external client library in the
  image).
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_BUCKETS",
    "Histogram",
    "sanitize_metric_name",
    "render_exposition",
    "parse_exposition",
]

#: Default latency bucket upper bounds, in seconds.  Tuned to the serve
#: path: sub-millisecond cache hits through multi-second cold sweeps.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


class Histogram:
    """Cumulative-bucket histogram, observation in seconds.

    ``observe`` is lock + bisect — cheap enough for the always-on
    serving stats.  ``snapshot`` returns plain data (cumulative bucket
    counts, sum, count) so renderers and JSON metrics need no further
    synchronization.
    """

    __slots__ = ("buckets", "_counts", "_sum", "_count", "_lock")

    def __init__(self, buckets: Optional[Sequence[float]] = None) -> None:
        bounds = tuple(sorted(set(buckets if buckets is not None
                                  else DEFAULT_BUCKETS)))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(not math.isfinite(b) for b in bounds):
            raise ValueError("bucket bounds must be finite (+Inf is implicit)")
        self.buckets = bounds
        self._counts = [0] * len(bounds)
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect_left(self.buckets, value)
        with self._lock:
            if index < len(self._counts):
                self._counts[index] += 1
            self._sum += value
            self._count += 1

    def snapshot(self) -> Dict[str, Any]:
        """``{"buckets": [(le, cumulative_count), ...], "sum", "count"}``
        — the final ``+Inf`` bucket is implicit (== ``count``)."""
        with self._lock:
            counts = list(self._counts)
            total = self._count
            acc = self._sum
        cumulative = []
        running = 0
        for bound, count in zip(self.buckets, counts):
            running += count
            cumulative.append((bound, running))
        return {"buckets": cumulative, "sum": acc, "count": total}


def sanitize_metric_name(name: str) -> str:
    """Dotted repo metric names → valid Prometheus metric names."""
    cleaned = _INVALID_CHARS.sub("_", name)
    if not cleaned or not _NAME_OK.match(cleaned):
        cleaned = "_" + cleaned
    return cleaned


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        '%s="%s"' % (key, str(val).replace("\\", "\\\\").replace('"', '\\"'))
        for key, val in sorted(labels.items())
    )
    return "{" + body + "}"


def render_exposition(
    counters: Optional[Dict[str, float]] = None,
    gauges: Optional[Dict[str, float]] = None,
    histograms: Optional[Dict[str, Dict[str, Any]]] = None,
    labeled_gauges: Optional[
        Iterable[Tuple[str, Dict[str, str], float]]] = None,
    prefix: str = "repro_serve",
    help_text: Optional[Dict[str, str]] = None,
) -> str:
    """Render one Prometheus text-format exposition.

    ``counters`` get a ``_total`` suffix; ``histograms`` map family name
    → :meth:`Histogram.snapshot` dicts and expand into ``_bucket`` /
    ``_sum`` / ``_count`` sample lines; ``labeled_gauges`` are
    ``(name, labels, value)`` triples for things like per-state flags.
    """
    help_text = help_text or {}
    lines: List[str] = []

    def family(raw: str, suffix: str = "") -> str:
        base = sanitize_metric_name(
            f"{prefix}_{raw}" if prefix else raw)
        return base + suffix

    for raw, value in sorted((counters or {}).items()):
        name = family(raw, "_total")
        lines.append(f"# HELP {name} "
                     f"{help_text.get(raw, 'Counter ' + raw + '.')}")
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {_format_value(float(value))}")

    labeled: Dict[str, List[Tuple[Dict[str, str], float]]] = {}
    for raw, labels, value in (labeled_gauges or ()):
        labeled.setdefault(raw, []).append((labels, value))

    gauge_families = sorted(set(gauges or {}) | set(labeled))
    for raw in gauge_families:
        name = family(raw)
        lines.append(f"# HELP {name} "
                     f"{help_text.get(raw, 'Gauge ' + raw + '.')}")
        lines.append(f"# TYPE {name} gauge")
        if gauges and raw in gauges:
            lines.append(f"{name} {_format_value(float(gauges[raw]))}")
        for labels, value in labeled.get(raw, ()):
            lines.append(
                f"{name}{_format_labels(labels)} "
                f"{_format_value(float(value))}")

    for raw, snap in sorted((histograms or {}).items()):
        name = family(raw)
        lines.append(f"# HELP {name} "
                     f"{help_text.get(raw, 'Histogram ' + raw + '.')}")
        lines.append(f"# TYPE {name} histogram")
        for bound, cum in snap["buckets"]:
            lines.append(
                f'{name}_bucket{{le="{_format_value(float(bound))}"}} '
                f"{cum}")
        lines.append(f'{name}_bucket{{le="+Inf"}} {snap["count"]}')
        lines.append(f"{name}_sum {_format_value(float(snap['sum']))}")
        lines.append(f"{name}_count {snap['count']}")

    return "\n".join(lines) + "\n"


_SAMPLE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"        # metric name
    r"(?:\{([^}]*)\})?"                    # optional labels
    r"\s+(NaN|[+-]?Inf|[-+0-9.eE]+)"       # value
    r"(?:\s+[0-9]+)?$"                     # optional timestamp
)
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _parse_value(token: str) -> float:
    if token == "NaN":
        return float("nan")
    if token in ("+Inf", "Inf"):
        return float("inf")
    if token == "-Inf":
        return float("-inf")
    return float(token)


def parse_exposition(text: str) -> Dict[str, Dict[str, Any]]:
    """Parse Prometheus text format into families.

    Returns ``{family: {"type", "help", "samples":
    [(sample_name, labels_dict, value), ...]}}``.  Raises
    :class:`ValueError` on malformed lines, samples without a ``TYPE``
    declaration, or histograms whose cumulative bucket counts decrease —
    strict enough that the CI smoke actually validates the endpoint.
    """
    families: Dict[str, Dict[str, Any]] = {}
    types: Dict[str, str] = {}

    def family_of(sample_name: str) -> Optional[str]:
        if sample_name in types:
            return sample_name
        for suffix in ("_bucket", "_sum", "_count", "_total"):
            if sample_name.endswith(suffix):
                base = sample_name[: -len(suffix)]
                if base in types:
                    return base
        return None

    for lineno, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            parts = line.split(None, 3)
            if len(parts) < 3:
                raise ValueError(f"line {lineno}: malformed HELP: {raw_line!r}")
            name = parts[2]
            families.setdefault(
                name, {"type": None, "help": None, "samples": []})
            families[name]["help"] = parts[3] if len(parts) > 3 else ""
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                raise ValueError(f"line {lineno}: malformed TYPE: {raw_line!r}")
            _, _, name, kind = parts
            if kind not in ("counter", "gauge", "histogram", "summary",
                            "untyped"):
                raise ValueError(f"line {lineno}: unknown type {kind!r}")
            families.setdefault(
                name, {"type": None, "help": None, "samples": []})
            families[name]["type"] = kind
            types[name] = kind
            continue
        if line.startswith("#"):
            continue  # comment
        match = _SAMPLE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample: {raw_line!r}")
        sample_name, label_body, value_token = match.groups()
        base = family_of(sample_name)
        if base is None:
            raise ValueError(
                f"line {lineno}: sample {sample_name!r} has no TYPE "
                f"declaration")
        labels = {key: val.replace('\\"', '"').replace("\\\\", "\\")
                  for key, val in _LABEL.findall(label_body or "")}
        families[base]["samples"].append(
            (sample_name, labels, _parse_value(value_token)))

    # Histogram sanity: cumulative bucket counts must not decrease and
    # the +Inf bucket must equal _count.
    for name, fam in families.items():
        if fam["type"] != "histogram":
            continue
        buckets = [(s[1].get("le"), s[2]) for s in fam["samples"]
                   if s[0] == name + "_bucket"]
        counts = [s[2] for s in fam["samples"] if s[0] == name + "_count"]
        previous = -1.0
        inf_count = None
        for le, value in buckets:
            if value < previous:
                raise ValueError(
                    f"histogram {name}: bucket counts decrease at le={le}")
            previous = value
            if le == "+Inf":
                inf_count = value
        if buckets and inf_count is None:
            raise ValueError(f"histogram {name}: missing +Inf bucket")
        if counts and inf_count is not None and counts[0] != inf_count:
            raise ValueError(
                f"histogram {name}: +Inf bucket {inf_count} != _count "
                f"{counts[0]}")
    return families
