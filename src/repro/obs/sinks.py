"""Event sinks: where closed spans and point events go.

Anything with an ``emit(event: dict) -> None`` method is a sink
(:class:`Sink` documents the protocol).  Three implementations cover the
three consumers:

* :class:`MemorySink` — keeps events in a list; what tests assert on.
* :class:`JsonlSink` — one ``json.dumps`` line per event, for offline
  analysis (``repro <cmd> --trace-file out.jsonl``).
* :class:`ConsoleReporter` — a :class:`MemorySink` that can print a
  human-readable span/counter summary (``repro <cmd> --profile``).

:func:`derived_metrics` computes the quality ratios — cache hit rate,
interval fast-path coverage — from a counter snapshot; the console
report, the JSONL summary line, and the sweep benchmark all share it.
"""

from __future__ import annotations

import io
import json
import os
import sys
import threading
from collections import defaultdict
from typing import Any, Dict, List, Optional, TextIO

__all__ = [
    "Sink",
    "MemorySink",
    "JsonlSink",
    "ConsoleReporter",
    "derived_metrics",
]


class Sink:
    """The sink protocol (subclassing is optional — duck typing works)."""

    def emit(self, event: Dict[str, Any]) -> None:
        """Receive one event dict.  Must be thread-safe."""
        raise NotImplementedError

    def close(self) -> None:
        """Release resources; further ``emit`` calls are undefined."""


class MemorySink(Sink):
    """In-memory event collector for tests and ad-hoc inspection."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._events: List[Dict[str, Any]] = []

    def emit(self, event: Dict[str, Any]) -> None:
        with self._lock:
            self._events.append(event)

    @property
    def events(self) -> List[Dict[str, Any]]:
        """Snapshot copy of everything emitted so far."""
        with self._lock:
            return list(self._events)

    def spans(self, name: Optional[str] = None) -> List[Dict[str, Any]]:
        """Span events, optionally filtered by span name."""
        return [
            e for e in self.events
            if e.get("type") == "span" and (name is None or e["name"] == name)
        ]

    def close(self) -> None:
        pass


class JsonlSink(Sink):
    """Append events to a file, one JSON object per line.

    Writes are buffered (``buffer_lines`` serialized lines per write
    syscall) so a long sweep emitting hundreds of thousands of span
    events doesn't pay one ``write`` each.  :meth:`flush`,
    :meth:`write_summary`, and :meth:`close` all drain the buffer, so a
    file read after any of them sees every event emitted so far.
    """

    def __init__(self, target: Any, buffer_lines: int = 256) -> None:
        self._lock = threading.Lock()
        self._buffer: List[str] = []
        self._buffer_lines = max(1, buffer_lines)
        # Fork guard: a pool worker forked mid-session inherits this
        # sink (buffer and file descriptor included); if it wrote, the
        # inherited buffer would duplicate lines into the parent's file.
        # Only the process that opened the sink ever writes.
        self._pid = os.getpid()
        if hasattr(target, "write"):
            self._file: TextIO = target
            self._owns_file = False
        else:
            self._file = open(target, "w", encoding="utf-8")
            self._owns_file = True

    def emit(self, event: Dict[str, Any]) -> None:
        if os.getpid() != self._pid:
            return
        line = json.dumps(event, default=str)
        with self._lock:
            self._buffer.append(line)
            if len(self._buffer) >= self._buffer_lines:
                self._flush_locked()

    def _flush_locked(self) -> None:
        if self._buffer:
            self._file.write("\n".join(self._buffer) + "\n")
            self._buffer.clear()

    def flush(self) -> None:
        """Drain the line buffer and flush the underlying file."""
        if os.getpid() != self._pid:
            return
        with self._lock:
            self._flush_locked()
            self._file.flush()

    def write_summary(self, registry: Any) -> None:
        """Append a final ``{"type": "summary"}`` line with the
        registry's counter/gauge snapshot and the derived metrics,
        then flush — the summary is a read barrier for consumers."""
        counters = registry.counters()
        self.emit({
            "type": "summary",
            "counters": counters,
            "gauges": registry.gauges(),
            "derived": derived_metrics(counters),
        })
        self.flush()

    def close(self) -> None:
        if os.getpid() != self._pid:
            return
        with self._lock:
            self._flush_locked()
            self._file.flush()
            if self._owns_file:
                self._file.close()


def derived_metrics(counters: Dict[str, int]) -> Dict[str, float]:
    """Quality ratios computed from the standard sweep counters.

    ``cache_hit_rate``
        ``sweep.cache.hits / (hits + misses)`` — how much predicate work
        the shared :class:`~repro.core.sweep.PredicateCache` absorbed.
    ``fastpath_fraction``
        Interval fast-path scans over all witness scans — the share of
        the corpus answered by closed-form interval algebra instead of
        per-object evaluation.
    ``compiled_fraction``
        Compiled-program scans over all witness scans — the share the
        predicate compiler (:mod:`repro.core.plan`) fused into
        single-pass programs.
    ``columnar_fraction``
        Columnar mask-pass scans over all witness scans — the share the
        columnar engine (:mod:`repro.core.columnar`) vectorized into
        whole-column operations.

    Ratios whose denominators are zero are omitted.
    """
    derived: Dict[str, float] = {}
    hits = counters.get("sweep.cache.hits", 0)
    misses = counters.get("sweep.cache.misses", 0)
    if hits + misses:
        derived["cache_hit_rate"] = hits / (hits + misses)
    fast = counters.get("sweep.scans.fastpath", 0)
    columnar = counters.get("sweep.scans.columnar", 0)
    compiled = counters.get("sweep.scans.compiled", 0)
    scans = fast + columnar + compiled \
        + counters.get("sweep.scans.cached", 0) \
        + counters.get("sweep.scans.plain", 0)
    if scans:
        derived["fastpath_fraction"] = fast / scans
        derived["columnar_fraction"] = columnar / scans
        derived["compiled_fraction"] = compiled / scans
    return derived


class ConsoleReporter(MemorySink):
    """Collects events and renders an end-of-run profile summary."""

    #: Valid ``sort`` keys for :meth:`render` / ``--profile-sort``.
    SORT_KEYS = ("total", "self", "count")

    def report(self, registry: Any, file: Optional[TextIO] = None,
               sort: str = "total") -> None:
        """Print span aggregates, counters, gauges, and derived metrics."""
        out = file or sys.stdout
        out.write(self.render(registry, sort=sort))

    def render(self, registry: Any, sort: str = "total") -> str:
        if sort not in self.SORT_KEYS:
            raise ValueError(
                f"sort must be one of {self.SORT_KEYS}, got {sort!r}")
        buf = io.StringIO()
        spans = self.spans()
        buf.write("== profile ==\n")
        if spans:
            # Self time = a span's duration minus its direct children's,
            # so hot leaf spans aren't hidden under their parents.
            child_time: Dict[Any, float] = defaultdict(float)
            for span in spans:
                parent = span.get("parent_id")
                if parent is not None:
                    child_time[parent] += span["duration"] or 0.0
            agg: Dict[str, List[float]] = defaultdict(list)
            self_agg: Dict[str, float] = defaultdict(float)
            for span in spans:
                duration = span["duration"] or 0.0
                agg[span["name"]].append(duration)
                self_agg[span["name"]] += max(
                    0.0, duration - child_time.get(span.get("span_id"), 0.0))
            if sort == "self":
                key = lambda n: -self_agg[n]  # noqa: E731
            elif sort == "count":
                key = lambda n: -len(agg[n])  # noqa: E731
            else:
                key = lambda n: -sum(agg[n])  # noqa: E731
            buf.write(f"{'span':<28} {'count':>6} {'total_s':>10} "
                      f"{'self_s':>10} {'mean_s':>10} {'max_s':>10}\n")
            for name in sorted(agg, key=key):
                durations = agg[name]
                total = sum(durations)
                buf.write(
                    f"{name:<28} {len(durations):>6} {total:>10.4f} "
                    f"{self_agg[name]:>10.4f} "
                    f"{total / len(durations):>10.4f} "
                    f"{max(durations):>10.4f}\n"
                )
        else:
            buf.write("(no spans recorded)\n")
        counters = registry.counters()
        if counters:
            buf.write("-- counters --\n")
            for name in sorted(counters):
                buf.write(f"{name:<44} {counters[name]:>12,}\n")
        gauges = registry.gauges()
        if gauges:
            buf.write("-- gauges --\n")
            for name in sorted(gauges):
                buf.write(f"{name:<44} {gauges[name]:>12,}\n")
        derived = derived_metrics(counters)
        if derived:
            buf.write("-- derived --\n")
            if "cache_hit_rate" in derived:
                buf.write(f"cache hit rate: {derived['cache_hit_rate']:.1%}\n")
            if "fastpath_fraction" in derived:
                buf.write("interval fast-path coverage: "
                          f"{derived['fastpath_fraction']:.1%} of scans\n")
            if derived.get("compiled_fraction"):
                buf.write("compiled-program coverage: "
                          f"{derived['compiled_fraction']:.1%} of scans\n")
        return buf.getvalue()
