"""Event sinks: where closed spans and point events go.

Anything with an ``emit(event: dict) -> None`` method is a sink
(:class:`Sink` documents the protocol).  Three implementations cover the
three consumers:

* :class:`MemorySink` — keeps events in a list; what tests assert on.
* :class:`JsonlSink` — one ``json.dumps`` line per event, for offline
  analysis (``repro <cmd> --trace-file out.jsonl``).
* :class:`ConsoleReporter` — a :class:`MemorySink` that can print a
  human-readable span/counter summary (``repro <cmd> --profile``).

:func:`derived_metrics` computes the quality ratios — cache hit rate,
interval fast-path coverage — from a counter snapshot; the console
report, the JSONL summary line, and the sweep benchmark all share it.
"""

from __future__ import annotations

import io
import json
import sys
import threading
from collections import defaultdict
from typing import Any, Dict, List, Optional, TextIO

__all__ = [
    "Sink",
    "MemorySink",
    "JsonlSink",
    "ConsoleReporter",
    "derived_metrics",
]


class Sink:
    """The sink protocol (subclassing is optional — duck typing works)."""

    def emit(self, event: Dict[str, Any]) -> None:
        """Receive one event dict.  Must be thread-safe."""
        raise NotImplementedError

    def close(self) -> None:
        """Release resources; further ``emit`` calls are undefined."""


class MemorySink(Sink):
    """In-memory event collector for tests and ad-hoc inspection."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._events: List[Dict[str, Any]] = []

    def emit(self, event: Dict[str, Any]) -> None:
        with self._lock:
            self._events.append(event)

    @property
    def events(self) -> List[Dict[str, Any]]:
        """Snapshot copy of everything emitted so far."""
        with self._lock:
            return list(self._events)

    def spans(self, name: Optional[str] = None) -> List[Dict[str, Any]]:
        """Span events, optionally filtered by span name."""
        return [
            e for e in self.events
            if e.get("type") == "span" and (name is None or e["name"] == name)
        ]

    def close(self) -> None:
        pass


class JsonlSink(Sink):
    """Append events to a file, one JSON object per line."""

    def __init__(self, target: Any) -> None:
        self._lock = threading.Lock()
        if hasattr(target, "write"):
            self._file: TextIO = target
            self._owns_file = False
        else:
            self._file = open(target, "w", encoding="utf-8")
            self._owns_file = True

    def emit(self, event: Dict[str, Any]) -> None:
        line = json.dumps(event, default=str)
        with self._lock:
            self._file.write(line + "\n")

    def write_summary(self, registry: Any) -> None:
        """Append a final ``{"type": "summary"}`` line with the
        registry's counter/gauge snapshot and the derived metrics."""
        counters = registry.counters()
        self.emit({
            "type": "summary",
            "counters": counters,
            "gauges": registry.gauges(),
            "derived": derived_metrics(counters),
        })

    def close(self) -> None:
        with self._lock:
            self._file.flush()
            if self._owns_file:
                self._file.close()


def derived_metrics(counters: Dict[str, int]) -> Dict[str, float]:
    """Quality ratios computed from the standard sweep counters.

    ``cache_hit_rate``
        ``sweep.cache.hits / (hits + misses)`` — how much predicate work
        the shared :class:`~repro.core.sweep.PredicateCache` absorbed.
    ``fastpath_fraction``
        Interval fast-path scans over all witness scans — the share of
        the corpus answered by closed-form interval algebra instead of
        per-object evaluation.
    ``compiled_fraction``
        Compiled-program scans over all witness scans — the share the
        predicate compiler (:mod:`repro.core.plan`) fused into
        single-pass programs.

    Ratios whose denominators are zero are omitted.
    """
    derived: Dict[str, float] = {}
    hits = counters.get("sweep.cache.hits", 0)
    misses = counters.get("sweep.cache.misses", 0)
    if hits + misses:
        derived["cache_hit_rate"] = hits / (hits + misses)
    fast = counters.get("sweep.scans.fastpath", 0)
    compiled = counters.get("sweep.scans.compiled", 0)
    scans = fast + compiled + counters.get("sweep.scans.cached", 0) \
        + counters.get("sweep.scans.plain", 0)
    if scans:
        derived["fastpath_fraction"] = fast / scans
        derived["compiled_fraction"] = compiled / scans
    return derived


class ConsoleReporter(MemorySink):
    """Collects events and renders an end-of-run profile summary."""

    def report(self, registry: Any, file: Optional[TextIO] = None) -> None:
        """Print span aggregates, counters, gauges, and derived metrics."""
        out = file or sys.stdout
        out.write(self.render(registry))

    def render(self, registry: Any) -> str:
        buf = io.StringIO()
        spans = self.spans()
        buf.write("== profile ==\n")
        if spans:
            agg: Dict[str, List[float]] = defaultdict(list)
            for span in spans:
                agg[span["name"]].append(span["duration"])
            buf.write(f"{'span':<28} {'count':>6} {'total_s':>10} "
                      f"{'mean_s':>10} {'max_s':>10}\n")
            for name in sorted(agg, key=lambda n: -sum(agg[n])):
                durations = agg[name]
                total = sum(durations)
                buf.write(
                    f"{name:<28} {len(durations):>6} {total:>10.4f} "
                    f"{total / len(durations):>10.4f} "
                    f"{max(durations):>10.4f}\n"
                )
        else:
            buf.write("(no spans recorded)\n")
        counters = registry.counters()
        if counters:
            buf.write("-- counters --\n")
            for name in sorted(counters):
                buf.write(f"{name:<44} {counters[name]:>12,}\n")
        gauges = registry.gauges()
        if gauges:
            buf.write("-- gauges --\n")
            for name in sorted(gauges):
                buf.write(f"{name:<44} {gauges[name]:>12,}\n")
        derived = derived_metrics(counters)
        if derived:
            buf.write("-- derived --\n")
            if "cache_hit_rate" in derived:
                buf.write(f"cache hit rate: {derived['cache_hit_rate']:.1%}\n")
            if "fastpath_fraction" in derived:
                buf.write("interval fast-path coverage: "
                          f"{derived['fastpath_fraction']:.1%} of scans\n")
            if derived.get("compiled_fraction"):
                buf.write("compiled-program coverage: "
                          f"{derived['compiled_fraction']:.1%} of scans\n")
        return buf.getvalue()
