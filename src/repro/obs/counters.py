"""Thread-safe counter and gauge aggregation.

Counters are monotonic within a :class:`CounterSet`'s lifetime (they only
move by the deltas handed to :meth:`CounterSet.incr`, and sweeps only
hand in non-negative deltas); gauges are last-write-wins point-in-time
values.  Both live in the registry, not in sinks: per-increment events
would swamp a JSONL trace, so sinks see counters only as end-of-run
summary snapshots.
"""

from __future__ import annotations

import threading
from typing import Dict

__all__ = ["CounterSet"]


class CounterSet:
    """A named bag of counters and gauges behind one lock."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}

    def incr(self, name: str, n: int = 1) -> None:
        """Add ``n`` to counter ``name`` (created at 0)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        """Record the current value of gauge ``name``."""
        with self._lock:
            self._gauges[name] = value

    def counter(self, name: str) -> int:
        """Current value of one counter (0 when never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def counters(self) -> Dict[str, int]:
        """Snapshot copy of every counter."""
        with self._lock:
            return dict(self._counters)

    def gauges(self) -> Dict[str, float]:
        """Snapshot copy of every gauge."""
        with self._lock:
            return dict(self._gauges)

    def reset(self) -> None:
        """Zero everything."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
