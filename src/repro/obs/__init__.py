"""repro.obs — engine telemetry: spans, counters, and profiling hooks.

The paper's method is observational — transition probabilities and
mean-effort-to-foil are *measured*, not assumed — so the engine that
computes those measurements is itself measurable.  This package is the
instrumentation layer the analysis engine reports through:

* **Spans** — hierarchical, timed regions (``sweep.models`` →
  ``sweep.task``; ``model.run`` → ``model.operation``), each closing
  into one event with wall time, duration, attributes, and parent id.
* **Counters / gauges** — monotonic aggregates (cache hits/misses/
  evictions, interval fast-path vs. per-object scans, tasks queued and
  completed, pool kind chosen, witnesses found, probes run) held in the
  registry and snapshotted at report time.
* **Sinks** — pluggable event consumers: :class:`MemorySink` for tests,
  :class:`JsonlSink` for offline analysis, :class:`ConsoleReporter` for
  the ``--profile`` summary.

Instrumented code targets the module-level default registry::

    from repro import obs

    obs.enable(obs.MemorySink())
    with obs.span("sweep.model", model="Sendmail"):
        obs.incr("sweep.witnesses", 3)
    obs.disable()

Everything is off by default: while disabled, ``span`` returns a shared
no-op singleton and ``incr``/``gauge``/``event`` return after a single
flag check, so an uninstrumented run pays effectively nothing.  The
engine's hot loops hoist the check further (one test per scan, none per
object) — see :mod:`repro.core.sweep`.
"""

from __future__ import annotations

from typing import Any

from .counters import CounterSet
from .prometheus import (
    DEFAULT_BUCKETS,
    Histogram,
    parse_exposition,
    render_exposition,
)
from .registry import Registry
from .sinks import ConsoleReporter, JsonlSink, MemorySink, Sink, derived_metrics
from .span import NOOP_SPAN, Span
from .trace import (
    TailRules,
    TraceCollector,
    TraceContext,
    chrome_payload,
    chrome_trace_events,
    emit_span,
    load_trace_events,
    mint_span_id,
    trace_timeline,
)

__all__ = [
    "Registry",
    "Span",
    "NOOP_SPAN",
    "CounterSet",
    "Sink",
    "MemorySink",
    "JsonlSink",
    "ConsoleReporter",
    "derived_metrics",
    "TraceContext",
    "TailRules",
    "TraceCollector",
    "mint_span_id",
    "emit_span",
    "trace_timeline",
    "chrome_trace_events",
    "chrome_payload",
    "load_trace_events",
    "Histogram",
    "DEFAULT_BUCKETS",
    "render_exposition",
    "parse_exposition",
    "DEFAULT",
    "get_registry",
    "enable",
    "disable",
    "enabled",
    "span",
    "incr",
    "gauge",
    "event",
    "counters",
    "gauges",
    "set_trace",
    "current_trace",
]

#: The process-wide default registry every instrumented module reports to.
DEFAULT = Registry()


def get_registry() -> Registry:
    """The module-level default :class:`Registry`."""
    return DEFAULT


def enable(*sinks: Any) -> None:
    """Enable the default registry, attaching ``sinks`` if given."""
    DEFAULT.enable(*sinks)


def disable() -> None:
    """Disable the default registry (sinks and aggregates survive)."""
    DEFAULT.disable()


def enabled() -> bool:
    """Is the default registry recording?"""
    return DEFAULT.enabled


def span(name: str, **attrs: Any) -> Any:
    """``DEFAULT.span(...)`` — a timed ``with`` block."""
    return DEFAULT.span(name, **attrs)


def incr(name: str, n: int = 1) -> None:
    """``DEFAULT.incr(...)``."""
    DEFAULT.incr(name, n)


def gauge(name: str, value: float) -> None:
    """``DEFAULT.gauge(...)``."""
    DEFAULT.gauge(name, value)


def event(name: str, **attrs: Any) -> None:
    """``DEFAULT.event(...)``."""
    DEFAULT.event(name, **attrs)


def counters() -> dict:
    """Counter snapshot of the default registry."""
    return DEFAULT.counters()


def gauges() -> dict:
    """Gauge snapshot of the default registry."""
    return DEFAULT.gauges()


def set_trace(ctx: Any) -> Any:
    """``DEFAULT.set_trace(...)`` — install an ambient trace context."""
    return DEFAULT.set_trace(ctx)


def current_trace() -> Any:
    """``DEFAULT.current_trace()``."""
    return DEFAULT.current_trace()
