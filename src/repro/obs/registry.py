"""The registry: the single object instrumented code talks to.

A :class:`Registry` owns the enabled flag, the sink list, the
counter/gauge aggregates, and the per-thread span stacks.  The design
constraint is the **disabled fast path**: every public entry point
checks ``self.enabled`` first and returns immediately, so code sprinkled
with ``registry.incr(...)`` / ``with registry.span(...)`` costs one
attribute load and one branch per call site when observability is off —
the engine's hot loops additionally hoist that check so they pay it once
per *scan*, not per object.

Clocks are injectable (``clock`` for durations, ``wall`` for event
timestamps) so tests get deterministic span timings.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Any, Callable, Dict, List, Optional

from .counters import CounterSet
from .span import NOOP_SPAN, Span

__all__ = ["Registry"]


class Registry:
    """Spans, counters, gauges, and sinks behind one enable flag."""

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        wall: Optional[Callable[[], float]] = None,
    ) -> None:
        #: Read directly by instrumented code — keep it a plain attribute.
        self.enabled: bool = False
        self._clock = clock or time.perf_counter
        self._wall = wall or time.time
        self._sinks: List[Any] = []
        self._metrics = CounterSet()
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._lock = threading.Lock()

    # -- lifecycle ---------------------------------------------------------

    def enable(self, *sinks: Any) -> None:
        """Attach ``sinks`` (if any) and start recording."""
        with self._lock:
            self._sinks.extend(sinks)
        self.enabled = True

    def disable(self) -> None:
        """Stop recording.  Sinks stay attached; aggregates survive."""
        self.enabled = False

    def clear_sinks(self) -> None:
        """Detach every sink (without closing them)."""
        with self._lock:
            self._sinks.clear()

    def remove_sink(self, sink: Any) -> bool:
        """Detach one sink (without closing it); ``True`` if attached."""
        with self._lock:
            try:
                self._sinks.remove(sink)
                return True
            except ValueError:
                return False

    def reset(self) -> None:
        """Zero counters and gauges (sinks and enabled state untouched)."""
        self._metrics.reset()

    def set_clock(
        self,
        clock: Callable[[], float],
        wall: Optional[Callable[[], float]] = None,
    ) -> None:
        """Swap the time sources — the fake-clock hook for tests."""
        self._clock = clock
        if wall is not None:
            self._wall = wall

    # -- spans -------------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> Any:
        """A context manager timing the enclosed block.

        Disabled registries hand back the shared no-op span; enabled ones
        a fresh :class:`~repro.obs.span.Span` whose close emits one event
        to every sink.
        """
        if not self.enabled:
            return NOOP_SPAN
        return Span(self, name, attrs)

    def current_span(self) -> Optional[Span]:
        """The innermost live span on this thread, if any."""
        stack = self._span_stack()
        return stack[-1] if stack else None

    def _span_stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def set_trace(self, ctx: Any) -> Any:
        """Install ``ctx`` as this thread's ambient trace context.

        Every span subsequently opened on this thread is stamped with
        the context's trace id, parents under its span id, and narrows
        the ambient context to itself for its duration.  Pass ``None``
        to clear.  Returns the previous value so executors can restore
        it around each unit of work (same contract as
        :meth:`set_inherited_parent`).
        """
        previous = getattr(self._local, "trace", None)
        self._local.trace = ctx
        return previous

    def current_trace(self) -> Any:
        """This thread's ambient trace context, or ``None``."""
        return getattr(self._local, "trace", None)

    def set_inherited_parent(self, parent_id: Optional[int]) -> Optional[int]:
        """Adopt ``parent_id`` as this thread's root-span parent.

        Worker threads have empty span stacks, so spans opened on them
        would otherwise be parentless; an executor that fans work out
        can carry the submitting thread's span across by setting it as
        the inherited parent around each unit of work.  Returns the
        previous value so callers can restore it.
        """
        previous = getattr(self._local, "inherited", None)
        self._local.inherited = parent_id
        return previous

    def _inherited_parent(self) -> Optional[int]:
        return getattr(self._local, "inherited", None)

    def _next_id(self) -> int:
        return next(self._ids)  # atomic under the GIL

    # -- metrics -----------------------------------------------------------

    def incr(self, name: str, n: int = 1) -> None:
        """Add ``n`` to a counter (no-op while disabled)."""
        if not self.enabled:
            return
        self._metrics.incr(name, n)

    def gauge(self, name: str, value: float) -> None:
        """Set a gauge (no-op while disabled)."""
        if not self.enabled:
            return
        self._metrics.gauge(name, value)

    def counter(self, name: str) -> int:
        """Read one counter (readable even while disabled)."""
        return self._metrics.counter(name)

    def counters(self) -> Dict[str, int]:
        """Snapshot of every counter."""
        return self._metrics.counters()

    def gauges(self) -> Dict[str, float]:
        """Snapshot of every gauge."""
        return self._metrics.gauges()

    # -- events ------------------------------------------------------------

    def event(self, name: str, **attrs: Any) -> None:
        """Emit a point-in-time event (no duration) to every sink."""
        if not self.enabled:
            return
        parent = self.current_span()
        self._emit({
            "type": "event",
            "name": name,
            "ts": self._wall(),
            "parent_id": parent.span_id if parent is not None else None,
            "attrs": attrs,
        })

    def _emit(self, event: Dict[str, Any]) -> None:
        with self._lock:
            sinks = list(self._sinks)
        for sink in sinks:
            sink.emit(event)
