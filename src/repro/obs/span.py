"""Hierarchical spans: named, timed, attributed regions of work.

A span is opened by :meth:`repro.obs.registry.Registry.span` and closed
by its ``with`` block; on exit it becomes one ``{"type": "span"}`` event
on every sink.  Parentage is tracked per thread — a span opened while
another is live on the same thread records that span's id as its
``parent_id``, so sinks can rebuild the call tree.

When the registry is disabled, :data:`NOOP_SPAN` is returned instead: a
shared singleton whose every method is a no-op, so the instrumented code
pays one flag check and nothing else.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional

__all__ = ["Span", "NOOP_SPAN"]


class Span:
    """One timed region.  Use only via ``with registry.span(...)``."""

    __slots__ = (
        "_registry",
        "name",
        "attrs",
        "span_id",
        "parent_id",
        "_start",
        "wall_start",
        "duration",
        "trace_id",
        "trace_span",
        "trace_parent",
        "_trace_restore",
        "_links",
    )

    def __init__(self, registry: Any, name: str,
                 attrs: Dict[str, Any]) -> None:
        self._registry = registry
        self.name = name
        self.attrs = attrs
        self.span_id: Optional[int] = None
        self.parent_id: Optional[int] = None
        self._start: float = 0.0
        self.wall_start: float = 0.0
        self.duration: Optional[float] = None
        self.trace_id: Optional[str] = None
        self.trace_span: Optional[str] = None
        self.trace_parent: Optional[str] = None
        self._trace_restore: Any = None
        self._links: Optional[List[Dict[str, str]]] = None

    def set(self, **attrs: Any) -> None:
        """Attach (or overwrite) attributes; they ride the close event."""
        self.attrs.update(attrs)

    def link(self, ctx: Any) -> None:
        """Record a causal link to another trace context.

        ``ctx`` is any object with ``trace_id`` / ``span_id`` string
        attributes (a :class:`repro.obs.trace.TraceContext`).  Links let
        one span serve many traces — a micro-batch span links to every
        request it computed for.
        """
        if self._links is None:
            self._links = []
        self._links.append({"trace_id": ctx.trace_id,
                            "span_id": ctx.span_id})

    def __enter__(self) -> "Span":
        registry = self._registry
        self.span_id = registry._next_id()
        stack = registry._span_stack()
        if stack:
            self.parent_id = stack[-1].span_id
        else:  # thread root: adopt an executor-propagated parent, if any
            self.parent_id = registry._inherited_parent()
        stack.append(self)
        ctx = registry.current_trace()
        if ctx is not None:
            # Ambient trace context: stamp globally-unique hex ids and
            # narrow the context to this span for its duration, so
            # nested spans chain under it across any boundary.
            self.trace_id = ctx.trace_id
            self.trace_parent = ctx.span_id
            self.trace_span = os.urandom(8).hex()
            self._trace_restore = ctx
            registry.set_trace(ctx.child(self.trace_span))
        self.wall_start = registry._wall()
        self._start = registry._clock()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        registry = self._registry
        self.duration = registry._clock() - self._start
        stack = registry._span_stack()
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:  # exited out of order — drop just this frame
            stack.remove(self)
        if self.trace_id is not None:
            registry.set_trace(self._trace_restore)
        event = {
            "type": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.wall_start,
            "duration": self.duration,
            "error": exc_type.__name__ if exc_type is not None else None,
            "attrs": dict(self.attrs),
        }
        if self.trace_id is not None:
            event["trace_id"] = self.trace_id
            event["trace_span"] = self.trace_span
            event["trace_parent"] = self.trace_parent
        if self._links:
            event["links"] = list(self._links)
        registry._emit(event)
        return False


class _NoopSpan:
    """The disabled-path span: every operation does nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        return False

    def set(self, **attrs: Any) -> None:
        pass

    def link(self, ctx: Any) -> None:
        pass


#: Shared no-op singleton handed out whenever the registry is disabled.
NOOP_SPAN = _NoopSpan()
