"""Distributed request tracing on top of :mod:`repro.obs`.

The serving pipeline scatters one request across an asyncio event loop,
a micro-batch shared with other requests, and (under the process
backend) worker processes — so a span tree keyed by thread-local parent
ids stops at every one of those boundaries.  This module adds the
*trace* layer that crosses them:

* :class:`TraceContext` — the ``(trace_id, span_id, sampled)`` triple
  identifying "this request" anywhere, with a W3C ``traceparent``-style
  string codec (``00-<32 hex>-<16 hex>-<flags>``) so the context can
  ride a JSON request line or a pickled chunk payload verbatim.
* **Ambient propagation** — :meth:`repro.obs.registry.Registry.set_trace`
  installs a context on the current thread; every span opened while it
  is live is stamped with ``trace_id`` / ``trace_span`` /
  ``trace_parent`` (16-hex ids minted per span, globally unique across
  processes — unlike the local integer ``span_id``s) and narrows the
  ambient context to itself for its duration, so nesting works exactly
  like the thread-local parent stack.
* :func:`emit_span` — a synthesized span event for code that cannot use
  an ambient ``with`` block (the asyncio serving path, where awaits
  interleave unrelated requests on one thread).
* :class:`TraceCollector` — a registry sink that reassembles span
  events back into per-trace records, applying **head sampling** (the
  ``sampled`` flag minted at admission) plus **tail-keep rules**: a
  trace that turned out slow, shed, errored, or witness-bearing is
  retained even when head sampling said drop.
* **Chrome trace-event export** — :func:`chrome_trace_events` converts
  span events into the ``chrome://tracing`` / Perfetto JSON array
  format (``repro trace export``).

Span events carry both id spaces: the local integers keep the
in-process profile tooling working unchanged; the hex trace ids are
what the collector and the exporters join on.
"""

from __future__ import annotations

import json
import os
import re
import threading
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "TraceContext",
    "TailRules",
    "TraceCollector",
    "mint_span_id",
    "emit_span",
    "chrome_trace_events",
    "chrome_payload",
    "load_trace_events",
    "trace_timeline",
]

_TRACEPARENT = re.compile(
    r"^00-([0-9a-f]{32})-([0-9a-f]{16})-([0-9a-f]{2})$"
)


def mint_span_id() -> str:
    """A fresh 16-hex-char span id (random, collision-safe across
    processes — unlike the registry's local integer ids)."""
    return os.urandom(8).hex()


@dataclass(frozen=True)
class TraceContext:
    """One point in a distributed trace: *this* span of *this* trace.

    ``span_id`` names the span that causally encloses whatever work the
    context is installed around; a span opened under the context
    records it as ``trace_parent`` and narrows the ambient context to
    itself.  ``sampled`` is the head-sampling decision minted at
    admission — it rides the codec so every process agrees.
    """

    trace_id: str
    span_id: str
    sampled: bool = True

    @classmethod
    def mint(cls, sampled: bool = True) -> "TraceContext":
        """A brand-new trace rooted at a fresh span."""
        return cls(trace_id=os.urandom(16).hex(), span_id=mint_span_id(),
                   sampled=sampled)

    def child(self, span_id: Optional[str] = None) -> "TraceContext":
        """The same trace, re-rooted at ``span_id`` (fresh by default)."""
        return TraceContext(trace_id=self.trace_id,
                            span_id=span_id or mint_span_id(),
                            sampled=self.sampled)

    def to_traceparent(self) -> str:
        """The W3C-style header form: ``00-<trace>-<span>-<flags>``."""
        flags = "01" if self.sampled else "00"
        return f"00-{self.trace_id}-{self.span_id}-{flags}"

    @classmethod
    def from_traceparent(cls, header: Any) -> Optional["TraceContext"]:
        """Parse a traceparent string; ``None`` for anything malformed
        (unknown version, bad lengths, non-hex, all-zero ids)."""
        if not isinstance(header, str):
            return None
        match = _TRACEPARENT.match(header.strip().lower())
        if match is None:
            return None
        trace_id, span_id, flags = match.groups()
        if set(trace_id) == {"0"} or set(span_id) == {"0"}:
            return None
        return cls(trace_id=trace_id, span_id=span_id,
                   sampled=bool(int(flags, 16) & 0x01))


def emit_span(
    registry: Any,
    name: str,
    ctx: TraceContext,
    start: float,
    duration: float,
    *,
    span_hex: Optional[str] = None,
    parent_hex: Optional[str] = None,
    links: Iterable[Any] = (),
    **attrs: Any,
) -> Optional[str]:
    """Emit one synthesized span event under ``ctx``.

    The asyncio serving path cannot use ambient ``with registry.span``
    blocks — awaits interleave unrelated requests on the loop thread —
    so it measures stages itself and emits the finished span in one
    shot.  ``span_hex`` pins the span's trace id (so children can be
    parented under it before it is emitted); ``parent_hex`` overrides
    the parent (default: ``ctx.span_id``).  ``links`` are
    :class:`TraceContext`-likes recorded as causal links.  Returns the
    span's trace id, or ``None`` when the registry is disabled.
    """
    if not registry.enabled:
        return None
    span_hex = span_hex or mint_span_id()
    event: Dict[str, Any] = {
        "type": "span",
        "name": name,
        "span_id": registry._next_id(),
        "parent_id": None,
        "start": start,
        "duration": duration,
        "error": None,
        "attrs": attrs,
        "trace_id": ctx.trace_id,
        "trace_span": span_hex,
        "trace_parent": parent_hex or ctx.span_id,
    }
    link_list = [{"trace_id": link.trace_id, "span_id": link.span_id}
                 for link in links]
    if link_list:
        event["links"] = link_list
    registry._emit(event)
    return span_hex


# ---------------------------------------------------------------------------
# The collector: span events -> per-trace records.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TailRules:
    """Which finished traces to retain regardless of head sampling.

    ``slow_ms``
        Keep traces whose reported elapsed time meets this bound
        (``None`` disables the rule).
    ``keep_shed`` / ``keep_error`` / ``keep_witness``
        Keep traces whose request was shed (overloaded / timeout /
        draining), errored, or found hidden-path witnesses.
    """

    slow_ms: Optional[float] = None
    keep_shed: bool = True
    keep_error: bool = True
    keep_witness: bool = True

    def keeps(self, outcome: Dict[str, Any]) -> bool:
        status = outcome.get("status")
        if self.keep_error and status == "error":
            return True
        if self.keep_shed and outcome.get("shed"):
            return True
        if self.keep_witness and outcome.get("witness"):
            return True
        elapsed = outcome.get("elapsed_ms")
        if self.slow_ms is not None and elapsed is not None \
                and elapsed >= self.slow_ms:
            return True
        return False


class TraceCollector:
    """A registry sink that reassembles spans into finished traces.

    Lifecycle per request: :meth:`begin` registers the root context,
    span events carrying its ``trace_id`` (or *linking* to it — the
    batch span serves many traces at once) accumulate, and
    :meth:`finish` seals the trace, applying head sampling plus the
    tail-keep rules.  Kept traces land in a bounded deque
    (:meth:`traces`); everything else is dropped on the spot, so memory
    stays flat under arbitrarily long serving sessions.

    Thread-safe: spans arrive from executor threads and replayed worker
    processes while begin/finish run on the event loop.
    """

    def __init__(
        self,
        head_sample: float = 1.0,
        tail: Optional[TailRules] = None,
        max_traces: int = 256,
        max_spans: int = 512,
        max_open: int = 1024,
        rng: Optional[Callable[[], float]] = None,
    ) -> None:
        self.head_sample = max(0.0, min(1.0, head_sample))
        self.tail = tail if tail is not None else TailRules()
        self.max_spans = max_spans
        self._rng = rng
        self._lock = threading.Lock()
        self._open: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._max_open = max_open
        self._kept: "deque[Dict[str, Any]]" = deque(maxlen=max_traces)
        self.begun = 0
        self.kept = 0
        self.dropped = 0
        self.tail_kept = 0

    # -- admission-side API -------------------------------------------------

    def sample(self) -> bool:
        """The head-sampling decision for a newly minted trace."""
        if self.head_sample >= 1.0:
            return True
        if self.head_sample <= 0.0:
            return False
        if self._rng is not None:
            return self._rng() < self.head_sample
        import random

        return random.random() < self.head_sample

    def begin(self, ctx: TraceContext, **meta: Any) -> None:
        """Register the root context of one request's trace."""
        with self._lock:
            self.begun += 1
            self._open[ctx.trace_id] = {
                "ctx": ctx,
                "meta": dict(meta),
                "spans": [],
                "truncated": 0,
            }
            # A request that never finishes (client vanished mid-await)
            # must not pin its buffer forever.
            while len(self._open) > self._max_open:
                self._open.popitem(last=False)

    # -- the sink protocol --------------------------------------------------

    def emit(self, event: Dict[str, Any]) -> None:
        """Buffer span events under every trace they belong or link to."""
        if event.get("type") != "span":
            return
        trace_id = event.get("trace_id")
        targets = []
        if trace_id is not None:
            targets.append(trace_id)
        for link in event.get("links", ()):  # batch spans serve many
            linked = link.get("trace_id")
            if linked is not None and linked != trace_id:
                targets.append(linked)
        if not targets:
            return
        with self._lock:
            for target in targets:
                entry = self._open.get(target)
                if entry is None:
                    continue
                if len(entry["spans"]) >= self.max_spans:
                    entry["truncated"] += 1
                    continue
                entry["spans"].append(event)

    def close(self) -> None:
        pass

    # -- completion-side API ------------------------------------------------

    def finish(self, trace_id: str, **outcome: Any) -> Optional[Dict[str, Any]]:
        """Seal one trace: keep it (head-sampled or tail-kept) or drop.

        ``outcome`` feeds the tail rules — ``status``, ``elapsed_ms``,
        ``shed``, ``witness``.  Returns the kept trace record (also
        appended to :meth:`traces`) or ``None``.
        """
        with self._lock:
            entry = self._open.pop(trace_id, None)
        if entry is None:
            return None
        ctx: TraceContext = entry["ctx"]
        head = ctx.sampled
        tail = self.tail.keeps(outcome)
        if not head and not tail:
            with self._lock:
                self.dropped += 1
            return None
        spans = sorted(entry["spans"],
                       key=lambda s: (s.get("start") or 0.0))
        record = {
            "type": "trace",
            "trace_id": trace_id,
            "root_span": ctx.span_id,
            "sampled": head,
            "tail_kept": bool(tail and not head),
            "meta": entry["meta"],
            "outcome": dict(outcome),
            "truncated_spans": entry["truncated"],
            "spans": spans,
        }
        with self._lock:
            self.kept += 1
            if tail and not head:
                self.tail_kept += 1
            self._kept.append(record)
        return record

    def traces(self) -> List[Dict[str, Any]]:
        """Snapshot of the kept trace records, oldest first."""
        with self._lock:
            return list(self._kept)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "begun": self.begun,
                "kept": self.kept,
                "tail_kept": self.tail_kept,
                "dropped": self.dropped,
                "open": len(self._open),
            }


# ---------------------------------------------------------------------------
# Timeline + Chrome export.
# ---------------------------------------------------------------------------

def trace_timeline(record: Dict[str, Any],
                   limit: int = 40) -> List[Dict[str, Any]]:
    """A per-request stage timeline from one kept trace record.

    One row per span, ordered by start time, with offsets relative to
    the earliest span — the ``repro query --trace`` rendering (queue
    wait → batch window → engine → cache write).
    """
    spans = record.get("spans", [])
    if not spans:
        return []
    base = min(s.get("start") or 0.0 for s in spans)
    rows = []
    for span in spans[:limit]:
        rows.append({
            "name": span["name"],
            "offset_ms": round(((span.get("start") or base) - base) * 1000.0,
                               3),
            "duration_ms": round((span.get("duration") or 0.0) * 1000.0, 3),
            "remote": bool(span.get("pid")),
        })
    return rows


def chrome_trace_events(spans: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Span events → Chrome trace-event objects (``"ph": "X"``).

    Timestamps convert from wall seconds to microseconds.  Each event
    lands on a ``(pid, tid)`` lane: the pid is the emitting process
    (replayed worker spans carry theirs; local spans use this process),
    the tid is a short form of the trace id so one request reads as one
    horizontal lane in ``chrome://tracing`` / Perfetto.
    """
    local_pid = os.getpid()
    events: List[Dict[str, Any]] = []
    for span in spans:
        if span.get("type") != "span":
            continue
        trace_id = span.get("trace_id")
        tid = int(trace_id[:8], 16) % 1000000 if trace_id else 0
        args = dict(span.get("attrs") or {})
        if trace_id:
            args["trace_id"] = trace_id
            args["trace_span"] = span.get("trace_span")
            args["trace_parent"] = span.get("trace_parent")
        if span.get("links"):
            args["links"] = span["links"]
        if span.get("error"):
            args["error"] = span["error"]
        events.append({
            "name": span.get("name", "?"),
            "ph": "X",
            "ts": round((span.get("start") or 0.0) * 1e6, 3),
            "dur": round((span.get("duration") or 0.0) * 1e6, 3),
            "pid": span.get("pid", local_pid),
            "tid": tid,
            "cat": "repro",
            "args": args,
        })
    return events


def chrome_payload(spans: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """The full ``chrome://tracing`` document for a span sequence."""
    return {
        "traceEvents": chrome_trace_events(spans),
        "displayTimeUnit": "ms",
        "otherData": {"exporter": "repro.obs.trace"},
    }


def load_trace_events(path: str) -> Tuple[List[Dict[str, Any]], int]:
    """Span events from a telemetry JSONL file (``--trace-file``).

    Returns ``(span_events, skipped)`` where ``skipped`` counts
    non-span and malformed lines — a trace file is allowed to also hold
    point events and the closing summary record.
    """
    spans: List[Dict[str, Any]] = []
    skipped = 0
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError:
                skipped += 1
                continue
            if isinstance(event, dict) and event.get("type") == "span":
                spans.append(event)
            elif isinstance(event, dict) and event.get("type") == "trace":
                spans.extend(s for s in event.get("spans", ())
                             if isinstance(s, dict))
            else:
                skipped += 1
    return spans, skipped
