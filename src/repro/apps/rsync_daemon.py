"""rsync signed array index remote code execution (Bugtraq #3958) —
Table 1, row 3.

The paper's description: "a remotely supplied signed value used as an
array index, allowing the corruption of a function pointer or a return
address", classified as an Access Validation Error because the analyst
anchored on elementary activity 3 (*execute a code referred to by a
function pointer*).

The model: the daemon dispatches protocol opcodes through a handler
table; the opcode is a remotely supplied *signed* integer checked only
against the table's upper bound (``opcode < TABLE_SIZE``).  A negative
opcode indexes *backward* from the table — into the request buffer the
attacker just filled — so the "function pointer" fetched is an
attacker-chosen word, and the dispatch jumps to planted Mcode.

Variants:

``VULNERABLE``
    ``if (opcode >= TABLE_SIZE) reject;`` — upper bound only.
``PATCHED``
    ``if (opcode < 0 || opcode >= TABLE_SIZE) reject;``
``GUARDED``
    Wrong bound check, but the dispatch verifies the fetched pointer is
    a registered handler before jumping (the reference-consistency
    check at activity 3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional

from ..memory import Process, WORD_SIZE

__all__ = ["RsyncVariant", "DispatchResult", "RsyncDaemon", "TABLE_SIZE",
           "craft_negative_opcode"]

#: Number of protocol handlers.
TABLE_SIZE = 8


class RsyncVariant(enum.Enum):
    """Opcode-validation variants."""

    VULNERABLE = "upper bound only (opcode < TABLE_SIZE)"
    PATCHED = "two-sided bound (0 <= opcode < TABLE_SIZE)"
    GUARDED = "wrong bound, but dispatch verifies the handler pointer"


@dataclass(frozen=True)
class DispatchResult:
    """Outcome of dispatching one opcode."""

    accepted: bool
    handler: Optional[int] = None
    hijacked: bool = False
    reason: str = ""


class RsyncDaemon:
    """The opcode-dispatch fragment of the daemon.

    Memory layout (all in the simulated process's data segment): the
    attacker-writable request buffer sits physically *below* the handler
    table, so negative opcodes index into it.
    """

    #: Bytes of request buffer preceding the table.
    REQUEST_BUFFER_SIZE = 64

    def __init__(self, variant: RsyncVariant = RsyncVariant.VULNERABLE
                 ) -> None:
        self.variant = variant
        self.process = Process(symbols=("exit",))
        self.request_buffer = self.process.place_global(
            "request", self.REQUEST_BUFFER_SIZE
        )
        self.table = self.process.place_global(
            "handlers", TABLE_SIZE * WORD_SIZE
        )
        self._handlers: Dict[int, int] = {}
        for slot in range(TABLE_SIZE):
            entry = self.process.code.start + 0x800 + slot * 0x20
            self._handlers[slot] = entry
            self.process.space.write_word(
                self.table + slot * WORD_SIZE, entry, label="handlers"
            )

    # -- attacker surface ----------------------------------------------------

    def receive_request(self, payload: bytes) -> None:
        """Stage a protocol request — the bytes land in the buffer the
        negative index will later read as 'function pointers'."""
        self.process.space.write(
            self.request_buffer, payload[: self.REQUEST_BUFFER_SIZE],
            label="request",
        )

    def dispatch(self, opcode: int) -> DispatchResult:
        """Dispatch a remotely supplied opcode through the table."""
        if not self._opcode_ok(opcode):
            return DispatchResult(accepted=False, reason="opcode out of range")
        address = self.table + opcode * WORD_SIZE
        pointer = self.process.space.read_word(address)
        if self.variant is RsyncVariant.GUARDED:
            if pointer not in self._handlers.values():
                return DispatchResult(
                    accepted=False,
                    reason="handler pointer failed the consistency check",
                )
        if pointer in self._handlers.values():
            return DispatchResult(accepted=True, handler=pointer)
        # Control transfers to whatever the fetched word points at.
        return DispatchResult(accepted=True, handler=pointer, hijacked=True,
                              reason="dispatch through corrupted pointer")

    def _opcode_ok(self, opcode: int) -> bool:
        if self.variant is RsyncVariant.PATCHED:
            return 0 <= opcode < TABLE_SIZE
        return opcode < TABLE_SIZE  # the signed one-sided check

    def legitimate_handler(self, slot: int) -> int:
        """Entry point of a registered handler."""
        return self._handlers[slot]


def craft_negative_opcode(daemon: RsyncDaemon) -> int:
    """The opcode whose table fetch lands on the first word of the
    request buffer (where the attacker plants the Mcode address)."""
    offset_bytes = daemon.request_buffer - daemon.table
    assert offset_bytes % WORD_SIZE == 0 and offset_bytes < 0
    return offset_bytes // WORD_SIZE
