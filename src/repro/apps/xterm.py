"""xterm log-file race condition (the paper's Figure 5).

Scenario: xterm (running privileged) logs user Tom's messages to
``/usr/tom/x``.  The security predicate (pFSM1) — Tom must have write
permission to the file — is checked correctly.  But between the check
and the privileged ``open`` there is a timing window (pFSM2): Tom can
replace ``/usr/tom/x`` with a symbolic link to ``/etc/passwd``, and the
privileged open then writes through the link.

The model expresses both the victim and the attacker as scheduler
scripts so the race window becomes an enumerable set of interleavings
(see :mod:`repro.osmodel.scheduler`), and offers the two classic fixes:

``PATCHED_NOFOLLOW``
    The privileged open refuses to follow a symlink in the final
    component — the reference can no longer be redirected.
``PATCHED_RECHECK``
    After opening, re-verify that the opened object is the same one the
    permission check saw (re-binding check) before writing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..osmodel import (
    FileSystem,
    FileType,
    Inode,
    Mode,
    ROOT,
    Scheduler,
    Step,
    ThreadScript,
    User,
)

__all__ = ["XtermVariant", "XtermWorld", "XtermLogger", "build_race_scheduler"]

#: The paths of the paper's scenario.
LOG_PATH = "/usr/tom/x"
TARGET_PATH = "/etc/passwd"
LOG_MESSAGE = b"Tom's log message\n"


class XtermVariant(enum.Enum):
    """Implementation variants of the logging open."""

    VULNERABLE = "check by path, then open following symlinks"
    PATCHED_NOFOLLOW = "open refuses final-component symlinks"
    PATCHED_RECHECK = "re-verify the opened object is the checked object"


@dataclass
class XtermWorld:
    """World state for one interleaving run."""

    fs: FileSystem
    tom: User
    checked_ok: bool = False
    checked_inode: Optional[Inode] = None
    handle: Optional[Inode] = None
    open_error: str = ""


def make_world() -> XtermWorld:
    """The paper's initial filesystem: Tom owns a writable log file; the
    password file is root-owned."""
    fs = FileSystem()
    tom = User.regular("tom", 1000)
    fs.mkdirs("/usr", ROOT)
    fs.mkdir("/usr/tom", tom)
    fs.mkdirs("/etc", ROOT)
    fs.create_file(TARGET_PATH, ROOT, 0o644, data=b"root:x:0:0:...\n")
    fs.create_file(LOG_PATH, tom, 0o644)
    return XtermWorld(fs=fs, tom=tom)


class XtermLogger:
    """The privileged logging routine, split into scheduler-visible
    atomic steps (check / open / write)."""

    def __init__(self, variant: XtermVariant = XtermVariant.VULNERABLE) -> None:
        self.variant = variant

    # -- the three elementary steps --------------------------------------------

    def check(self, world: XtermWorld) -> None:
        """pFSM1: does Tom have write permission to the log file?"""
        world.checked_ok = world.fs.access(LOG_PATH, world.tom, Mode.W)
        if world.checked_ok:
            try:
                world.checked_inode = world.fs.lookup(LOG_PATH)
            except Exception:
                world.checked_ok = False

    def open(self, world: XtermWorld) -> None:
        """The privileged open (xterm runs as root)."""
        if not world.checked_ok:
            return
        follow = self.variant is not XtermVariant.PATCHED_NOFOLLOW
        try:
            inode = world.fs.open_write(LOG_PATH, ROOT, follow_symlinks=follow)
        except Exception as error:
            world.open_error = str(error)
            return
        if not follow and inode.file_type is FileType.SYMLINK:
            world.open_error = "refusing to open a symlink"
            return
        if (
            self.variant is XtermVariant.PATCHED_RECHECK
            and inode is not world.checked_inode
        ):
            world.open_error = "object changed between check and open"
            return
        world.handle = inode

    def write(self, world: XtermWorld) -> None:
        """Write the log message through the handle."""
        if world.handle is not None:
            world.fs.write(world.handle, LOG_MESSAGE)

    def script(self) -> ThreadScript[XtermWorld]:
        """The victim's step sequence."""
        return ThreadScript.of(
            "xterm",
            Step("check", self.check),
            Step("open", self.open),
            Step("write", self.write),
        )


def attacker_script() -> ThreadScript[XtermWorld]:
    """Tom's race: delete the log file and re-create it as a symlink to
    ``/etc/passwd`` — both legal operations in his own directory."""

    def unlink(world: XtermWorld) -> None:
        world.fs.unlink(LOG_PATH, world.tom)

    def symlink(world: XtermWorld) -> None:
        world.fs.symlink(LOG_PATH, TARGET_PATH, world.tom)

    return ThreadScript.of(
        "tom", Step("unlink", unlink), Step("symlink", symlink)
    )


def security_violated(world: XtermWorld) -> bool:
    """Tom's data landed in ``/etc/passwd``."""
    try:
        inode = world.fs.lookup(TARGET_PATH)
    except Exception:
        return False
    return LOG_MESSAGE in bytes(inode.data)


def build_race_scheduler(
    variant: XtermVariant = XtermVariant.VULNERABLE,
) -> Scheduler[XtermWorld]:
    """Scheduler enumerating all check/open/write × unlink/symlink
    interleavings for the given variant."""
    logger = XtermLogger(variant)
    return Scheduler(
        world_factory=make_world,
        scripts_factory=lambda _world: [logger.script(), attacker_script()],
        violation=security_violated,
    )
