"""IIS superfluous filename decoding (Figure 7; Bugtraq #2708).

CGI requests under ``/wwwroot/scripts`` are checked with the predicate
"the decoded filepath must not contain ``../``".  The IIS implementation
checked this after the *first* percent-decoding step, then — the bug —
decoded a *second* time before executing.  A filepath containing
``..%252f`` survives the check (``%25`` → ``%``, giving ``..%2f``, which
holds no ``../``) and only becomes ``../`` in the second decode — the
inconsistency between the checked predicate and the executed predicate
that the paper draws as the hidden transition from reject to accept.
(The Nimda worm exploited exactly this.)

Variants:

``VULNERABLE``
    Check after decode #1, then decode again (the 2001 IIS).
``PATCHED``
    Decode to a fixed point first, then check — the predicate is
    evaluated on the string that will actually execute.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..osmodel import normalize_path

__all__ = [
    "IisVariant",
    "CgiOutcome",
    "percent_decode",
    "IisServer",
    "SCRIPTS_ROOT",
]

SCRIPTS_ROOT = "/wwwroot/scripts"


class IisVariant(enum.Enum):
    """Check placement relative to the two decoding steps."""

    VULNERABLE = "check between the two decodes"
    PATCHED = "check after decoding reaches a fixed point"


def percent_decode(text: str) -> str:
    """One pass of RFC-style percent decoding (``%xx`` → byte).

    Malformed escapes are passed through unchanged, as IIS did.
    """
    out = []
    index = 0
    while index < len(text):
        char = text[index]
        if char == "%" and index + 2 < len(text) + 1:
            hex_digits = text[index + 1 : index + 3]
            if len(hex_digits) == 2 and all(
                c in "0123456789abcdefABCDEF" for c in hex_digits
            ):
                out.append(chr(int(hex_digits, 16)))
                index += 3
                continue
        out.append(char)
        index += 1
    return "".join(out)


def decode_fixed_point(text: str, max_rounds: int = 8) -> str:
    """Decode until the string stops changing (the PATCHED strategy)."""
    for _round in range(max_rounds):
        decoded = percent_decode(text)
        if decoded == text:
            return text
        text = decoded
    return text


@dataclass(frozen=True)
class CgiOutcome:
    """Result of handling one CGI filename request."""

    accepted: bool
    executed_path: Optional[str] = None
    reason: str = ""

    @property
    def escaped_root(self) -> bool:
        """Did execution land outside the scripts directory?"""
        return (
            self.executed_path is not None
            and not self.executed_path.startswith(SCRIPTS_ROOT)
        )


class IisServer:
    """The CGI filename-decoding pipeline."""

    def __init__(self, variant: IisVariant = IisVariant.VULNERABLE) -> None:
        self.variant = variant

    def handle_cgi_request(self, filepath: str) -> CgiOutcome:
        """Process one request for a CGI program under the scripts root.

        ``filepath`` is the raw (percent-encoded) path relative to
        ``/wwwroot/scripts``.
        """
        if self.variant is IisVariant.PATCHED:
            fully = decode_fixed_point(filepath)
            if "../" in fully or fully.startswith("/"):
                return CgiOutcome(False, reason="path escapes scripts root")
            executed = normalize_path(f"{SCRIPTS_ROOT}/{fully}")
            return CgiOutcome(True, executed_path=executed)

        # VULNERABLE pipeline: decode #1, check, decode #2, execute.
        once = percent_decode(filepath)  # first decoding
        if "../" in once or once.startswith("/"):
            # The implemented predicate: no "../" after the FIRST decode.
            return CgiOutcome(False, reason='contains "../" after first decode')
        twice = percent_decode(once)  # the superfluous second decoding
        executed = normalize_path(f"{SCRIPTS_ROOT}/{twice}")
        return CgiOutcome(True, executed_path=executed)

    # -- the two predicates, exposed for FSM binding ------------------------------

    @staticmethod
    def spec_safe(filepath: str) -> bool:
        """Specification predicate of pFSM1: the *executed* file resides
        under the scripts root — equivalently, the fully decoded path
        contains no ``../`` (and is relative)."""
        fully = decode_fixed_point(filepath)
        return "../" not in fully and not fully.startswith("/")

    @staticmethod
    def impl_accepts(filepath: str) -> bool:
        """Implemented predicate: no ``../`` after the first decode."""
        once = percent_decode(filepath)
        return "../" not in once and not once.startswith("/")
