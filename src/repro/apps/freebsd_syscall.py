"""FreeBSD system-call signed integer buffer overflow (Bugtraq #5493) —
Table 1, row 2.

The paper's description: "a negative value supplied for the argument
allowing exceeding the boundary of an array", classified as a Boundary
Condition Error because the analyst anchored on elementary activity 2
(*use the integer as the index/bound of an array*).

The mechanism is the classic signed/unsigned length confusion: the
kernel validates a user-supplied length with a *signed* upper-bound
comparison (``len > MAX`` rejects), then hands it to a copy routine that
consumes it as ``size_t``.  A negative length passes the signed check
and reinterprets as a huge unsigned count; the copy runs past the
destination buffer into adjacent kernel state.

The model's kernel image keeps a 64-byte request buffer physically
followed by a credential word (the caller's uid) — so the executable
consequence of the overflow is *privilege escalation*: the copied fill
bytes reach the ucred and a follow-up ``getuid`` observes uid 0.

Variants:

``VULNERABLE``
    ``if (len > MAX_REQUEST) return EINVAL;`` — the one-sided check.
``PATCHED``
    ``if (len < 0 || len > MAX_REQUEST) return EINVAL;`` — the derived
    predicate (the same shape as Sendmail's 0 <= x <= 100 fix).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..memory import AddressSpace, UInt32

__all__ = ["FreebsdVariant", "SyscallResult", "FreebsdKernel",
           "MAX_REQUEST", "craft_cred_overwrite"]

#: Size of the kernel's request staging buffer.
MAX_REQUEST = 64

#: The "page" bound the copy routine physically cannot exceed in one
#: call — what keeps a wrapped huge count from faulting the simulator,
#: as the real exploit's controlled partial copy did.
_COPY_CLAMP = 128

#: EINVAL-style error marker.
EINVAL = -22


class FreebsdVariant(enum.Enum):
    """The length-check variants."""

    VULNERABLE = "signed upper-bound check only (len > MAX rejects)"
    PATCHED = "two-sided check (0 <= len <= MAX)"


@dataclass(frozen=True)
class SyscallResult:
    """Outcome of one syscall invocation."""

    error: int  # 0 on success, EINVAL on rejection
    bytes_copied: int = 0

    @property
    def accepted(self) -> bool:
        """Did the kernel act on the request?"""
        return self.error == 0


class FreebsdKernel:
    """A kernel fragment: one request buffer, one credential word."""

    #: uid of the unprivileged caller.
    CALLER_UID = 1001

    def __init__(self, variant: FreebsdVariant = FreebsdVariant.VULNERABLE
                 ) -> None:
        self.variant = variant
        self.space = AddressSpace(size=1024 * 1024)
        self.buffer = self.space.map_region("request", 0x1000, MAX_REQUEST)
        # The credential structure sits physically after the buffer —
        # the adjacent kernel state the overflow reaches.
        self.cred = self.space.map_region("ucred", self.buffer.end, 4)
        self.space.write_word(self.cred.start, self.CALLER_UID,
                              label="ucred")

    # -- the vulnerable syscall --------------------------------------------

    def copy_request(self, data: bytes, length: int) -> SyscallResult:
        """``syscall(SYS_x, data, length)``: stage ``length`` bytes of
        ``data`` in the kernel buffer.

        The copy consumes ``length`` as ``size_t``, clamped by the
        page bound — the paper-era partial-copy behaviour that made the
        bug exploitable rather than a pure crash.
        """
        if not self._length_ok(length):
            return SyscallResult(error=EINVAL)
        unsigned = UInt32(length).value
        count = min(unsigned, _COPY_CLAMP)
        payload = data[:count] + b"\x00" * max(0, count - len(data))
        self.space.write(self.buffer.start, payload, label="request")
        return SyscallResult(error=0, bytes_copied=count)

    def _length_ok(self, length: int) -> bool:
        if self.variant is FreebsdVariant.PATCHED:
            return 0 <= length <= MAX_REQUEST
        return length <= MAX_REQUEST  # the signed one-sided check

    # -- observable consequences ----------------------------------------------

    def getuid(self) -> int:
        """The caller's uid as the kernel now believes it."""
        return self.space.read_word(self.cred.start)

    def cred_intact(self) -> bool:
        """Reference-consistency predicate over the credential word."""
        return self.getuid() == self.CALLER_UID

    @property
    def escalated(self) -> bool:
        """Did the caller become root?"""
        return self.getuid() == 0


def craft_cred_overwrite(kernel: FreebsdKernel) -> bytes:
    """Request data that, with a negative length, fills the buffer and
    lands uid 0 in the adjacent credential word."""
    return b"A" * MAX_REQUEST + (0).to_bytes(4, "little")
