"""Sendmail debugging-function signed integer overflow (Bugtraq #3163).

Section 4 of the paper: "A signed integer overflow condition exists in
writing the array ``tTvect[100]`` in the function ``tTflag()`` of the
Sendmail application.  As a result, an attacker can overwrite the global
offset table (GOT) entry of the function ``setuid()`` to be the starting
point of attacker-specified malicious code (Mcode)."

The model reproduces ``tTflag`` faithfully at the predicate level:

* the debug flag argument has the form ``"x.i"`` (category ``x``, level
  ``i``), parsed with C ``atoi`` semantics (wrapping 32-bit);
* the vulnerable implementation checks only ``x <= 100`` (the paper's
  Observation 3 example) before executing ``tTvect[x] = i``;
* ``tTvect`` is a global byte array whose address sits *above* the GOT,
  so a negative ``x`` indexes backward into the GOT entry of
  ``setuid()``.

Variants
--------
``VULNERABLE``
    The 2003 code: ``if (x <= 100) tTvect[x] = i``.
``PATCHED``
    The derived predicate of Observation 3: ``0 <= x <= 100``.
``GUARDED``
    Bounds check still wrong, but ``setuid`` calls verify GOT
    consistency first (the pFSM3 IMPL_REJ arm) — demonstrating that the
    *later* elementary activity can also foil the exploit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from ..memory import ControlFlowHijack, Process, atoi

__all__ = ["SendmailVariant", "Sendmail", "TTflagResult", "craft_got_exploit"]

#: Size of the debug category vector, as in the original source.
TTVECT_SIZE = 100


class SendmailVariant(enum.Enum):
    """Implementation variants of the tTflag bounds check."""

    VULNERABLE = "0.5-era check: x <= 100"
    PATCHED = "correct predicate: 0 <= x <= 100"
    GUARDED = "wrong check, but GOT consistency verified at call time"


@dataclass(frozen=True)
class TTflagResult:
    """Outcome of one ``tTflag`` invocation."""

    accepted: bool
    x: int
    i: int
    wrote_address: Optional[int] = None


class Sendmail:
    """The Sendmail debug-flag machinery inside a simulated process."""

    def __init__(self, variant: SendmailVariant = SendmailVariant.VULNERABLE) -> None:
        self.variant = variant
        self.process = Process(symbols=("setuid", "exit"))
        #: The global debug vector; lives in the data segment above the GOT.
        self.tTvect_address = self.process.place_global("tTvect", TTVECT_SIZE)

    # -- the vulnerable routine ---------------------------------------------

    def tTflag(self, flag: str) -> TTflagResult:
        """Process one ``-d x.i`` debug flag, as ``tTflag()`` does.

        Parsing uses :func:`~repro.memory.integers.atoi`, so an input
        like ``"4294967173.25"`` wraps to a negative ``x`` exactly as the
        32-bit original would.
        """
        x_text, _, i_text = flag.partition(".")
        x = atoi(x_text).value
        i = atoi(i_text).value if i_text else 1
        if not self._bounds_ok(x):
            return TTflagResult(accepted=False, x=x, i=i)
        address = self.tTvect_address + x
        self.process.space.write_byte(address, i & 0xFF, label="tTvect")
        return TTflagResult(accepted=True, x=x, i=i, wrote_address=address)

    def _bounds_ok(self, x: int) -> bool:
        if self.variant is SendmailVariant.PATCHED:
            return 0 <= x <= TTVECT_SIZE
        # VULNERABLE and GUARDED keep the original one-sided check.
        return x <= TTVECT_SIZE

    # -- downstream operation (Figure 3, Operation 2) ---------------------------

    def call_setuid(self) -> int:
        """Dispatch ``setuid()`` through the GOT.

        Raises :class:`~repro.memory.got.ControlFlowHijack` when the
        entry was corrupted and the variant performs no consistency
        check — the paper's hidden transition into ``Execute Mcode``.
        """
        check = self.variant is SendmailVariant.GUARDED
        return self.process.got.call("setuid", check_consistency=check)

    # -- predicates bound to live state --------------------------------------------

    def got_setuid_consistent(self) -> bool:
        """pFSM3's predicate: is ``addr_setuid`` unchanged since load?"""
        return self.process.got_consistent("setuid")

    def read_ttvect(self, index: int) -> int:
        """Read back a debug level (bounds-checked — harness helper)."""
        if not 0 <= index < TTVECT_SIZE:
            raise IndexError(index)
        return self.process.space.read_byte(self.tTvect_address + index)


def craft_got_exploit(app: Sendmail, wrap_inputs: bool = False) -> List[str]:
    """Build the ``x.i`` flag strings that overwrite ``addr_setuid`` with
    the address of planted Mcode.

    Four byte writes with negative indexes (one per byte of the
    little-endian pointer).  With ``wrap_inputs`` the textual ``x``
    values are given as huge positive decimals that *wrap* to the needed
    negatives through ``atoi`` — exercising pFSM1's hidden path (the
    input does not represent a 32-bit integer) in addition to pFSM2's.
    """
    mcode = app.process.plant_mcode()
    slot = app.process.got.entry_address("setuid")
    offset = slot - app.tTvect_address
    if offset >= 0:
        raise RuntimeError("layout does not place the GOT below tTvect")
    flags = []
    for byte_index, byte in enumerate(mcode.to_bytes(4, "little")):
        x = offset + byte_index
        if wrap_inputs:
            x_text = str(x + 2**32)  # wraps back to the negative x
        else:
            x_text = str(x)
        flags.append(f"{x_text}.{byte}")
    return flags
