"""rpc.statd remote format string vulnerability (Bugtraq #1480).

The paper's Table 2 row: pFSM1 is the content check "does the filename
contain format directives (e.g. %n, %d)?" and pFSM2 the
reference-consistency check "is the return address unchanged?".

The original bug: statd passed a remotely-supplied filename straight to
``syslog()`` as the *format* argument.  A filename containing ``%n``
makes ``vsprintf``'s varargs walk pop attacker-controlled words off the
stack — including words of the filename itself, which sits in a stack
buffer — turning ``%n`` into a write through an attacker-chosen pointer.

The model reproduces the full mechanism: the filename is copied into a
stack local, ``vsprintf`` walks its varargs from that buffer, and a
classic ``<target addr>%x%n``-style payload redirects the saved return
address (or any chosen word) to planted Mcode.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..memory import (
    Process,
    StackSmashed,
    contains_directives,
    strcpy,
    vsprintf,
)

__all__ = ["StatdVariant", "NotifyResult", "RpcStatd", "craft_format_exploit"]

#: Size of the stack buffer the filename is staged in.
LOG_BUFFER_SIZE = 256


class StatdVariant(enum.Enum):
    """Implementation variants of the logging call."""

    VULNERABLE = 'syslog(LOG_ERR, filename) — user input as format'
    PATCHED = 'syslog(LOG_ERR, "%s", filename) — input as data'
    SANITIZED = "reject filenames containing format directives"


@dataclass(frozen=True)
class NotifyResult:
    """Outcome of one SM_NOTIFY handling."""

    accepted: bool
    output: bytes = b""
    wrote_memory: bool = False
    returned_to: Optional[int] = None
    hijacked: bool = False
    reason: str = ""


class RpcStatd:
    """The statd notification logging path in a simulated process."""

    RETURN_SITE = 0x1480

    def __init__(self, variant: StatdVariant = StatdVariant.VULNERABLE) -> None:
        self.variant = variant
        self.process = Process(symbols=("exit",))

    def notify(self, filename: bytes) -> NotifyResult:
        """Handle one SM_NOTIFY whose monitored-host filename is
        attacker-supplied."""
        if self.variant is StatdVariant.SANITIZED and contains_directives(filename):
            return NotifyResult(accepted=False,
                                reason="filename contains format directives")
        frame = self.process.stack.push_frame(
            "log_event",
            return_address=self.RETURN_SITE,
            local_buffers={"logbuf": LOG_BUFFER_SIZE},
        )
        buffer = frame.local_address("logbuf")
        strcpy(self.process.space, buffer, filename, label="stack")
        if self.variant is StatdVariant.PATCHED:
            result = vsprintf(self.process.space, b"%s", args=(filename,))
        else:
            # The bug: the filename *is* the format string, and the
            # varargs walk starts at the buffer holding it.
            result = vsprintf(
                self.process.space, filename, args=(), vararg_base=buffer
            )
        try:
            returned_to = self.process.stack.pop_frame()
        except StackSmashed as smash:
            return NotifyResult(
                accepted=True,
                output=result.output,
                wrote_memory=result.wrote_memory,
                returned_to=smash.hijacked_target,
                hijacked=True,
                reason="return address rewritten via %n",
            )
        return NotifyResult(
            accepted=True,
            output=result.output,
            wrote_memory=result.wrote_memory,
            returned_to=returned_to,
        )

    def return_address_slot(self) -> int:
        """Address of log_event's return slot for the *next* call.

        Deterministic because the model's stack layout is; real exploits
        obtained the equivalent through trial offsets.
        """
        frame = self.process.stack.push_frame(
            "probe", return_address=0, local_buffers={"logbuf": LOG_BUFFER_SIZE}
        )
        slot = frame.return_address_slot
        self.process.stack.pop_frame()
        return slot


def craft_format_exploit(app: RpcStatd, pad_to: int = 0) -> bytes:
    """A filename whose ``%n`` rewrites log_event's return address to
    planted Mcode.

    Layout: the first vararg word popped is ``filename[0:4]`` (the
    varargs base is the buffer itself), so the payload leads with the
    target address, then pads printed output with ``%<width>x`` until the
    byte count equals the Mcode address, then stores it with ``%n``.

    Because a full 32-bit count would be impractical to print, the model
    plants Mcode and passes its low bytes via width padding only when the
    address is small; otherwise it uses the classic four-write variant.
    Here the simulated Mcode address fits in one write.
    """
    mcode = app.process.plant_mcode()
    slot = app.return_address_slot()
    # Varargs pop from the buffer start: word0 = payload[0:4] (filler,
    # consumed by the padded %x), word1 = payload[4:8] (the target
    # address, consumed by %n).  The 8 literal bytes print first, so the
    # %x pad width is mcode - 8.  (The model's vsprintf is transparent to
    # embedded NUL bytes in the format — a simplification real exploits
    # work around by placing the address last.)
    width = mcode - 8
    if width <= 0:
        raise RuntimeError("layout places Mcode too low for a single write")
    payload = b"AAAA"
    payload += slot.to_bytes(4, "little")
    payload += b"%" + str(width).encode() + b"x"
    payload += b"%n"
    if pad_to and len(payload) < pad_to:
        payload += b"B" * (pad_to - len(payload))
    return payload
