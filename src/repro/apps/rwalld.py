"""Solaris rwall arbitrary file corruption (Figure 6; CERT CA-1994-06).

Two operations, as the paper cascades them:

* **Operation 1 — write to /etc/utmp.**  pFSM1's predicate: only root
  should be able to edit the logged-in-users file.  The vulnerable
  configuration ships ``/etc/utmp`` world-writable, so a regular user
  appends the entry ``../etc/passwd``.
* **Operation 2 — the rwall daemon writes messages.**  For each utmp
  entry the daemon opens the named terminal and writes the broadcast.
  pFSM2's predicate: the target must be a *terminal* (object type
  check).  The real daemon performs no such check, so the entry
  ``../etc/passwd`` — resolved relative to ``/dev`` — lands the message
  in the password file.

Variants:

``VULNERABLE``
    World-writable utmp, no terminal-type check (the 1994 Solaris).
``PATCHED_PERMS``
    utmp writable by root only (fixes Operation 1).
``PATCHED_TYPECHECK``
    utmp still world-writable, but the daemon writes only to terminals
    (fixes Operation 2) — Lemma part 2: securing either operation alone
    foils the exploit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Tuple

from ..osmodel import (
    FileSystem,
    PermissionDenied,
    ROOT,
    User,
    normalize_path,
)

__all__ = ["RwallVariant", "RwallWorld", "RwallDaemon", "BroadcastReport",
           "make_world", "UTMP_PATH", "DEV_ROOT"]

UTMP_PATH = "/etc/utmp"
DEV_ROOT = "/dev"


class RwallVariant(enum.Enum):
    """Deployment/implementation variants."""

    VULNERABLE = "world-writable utmp, no terminal type check"
    PATCHED_PERMS = "utmp writable by root only"
    PATCHED_TYPECHECK = "daemon writes only to terminal devices"


@dataclass
class RwallWorld:
    """Filesystem plus the daemon's variant."""

    fs: FileSystem
    variant: RwallVariant


def make_world(variant: RwallVariant = RwallVariant.VULNERABLE) -> RwallWorld:
    """A host with two logged-in terminals and the password file."""
    fs = FileSystem()
    fs.mkdirs("/etc", ROOT)
    fs.mkdirs("/dev/pts", ROOT)
    fs.create_terminal("/dev/pts/25", ROOT)
    fs.create_terminal("/dev/pts/26", ROOT)
    fs.create_file("/etc/passwd", ROOT, 0o644, data=b"root:x:0:0:...\n")
    utmp_mode = 0o644 if variant is RwallVariant.PATCHED_PERMS else 0o666
    fs.create_file(UTMP_PATH, ROOT, utmp_mode,
                   data=b"pts/25\npts/26\n")
    return RwallWorld(fs=fs, variant=variant)


def add_utmp_entry(world: RwallWorld, user: User, entry: str) -> bool:
    """Operation 1: a user appends an entry to utmp.

    Returns False (exploit foiled at pFSM1) when the permission bits
    stop the write.
    """
    try:
        inode = world.fs.open_write(UTMP_PATH, user)
    except PermissionDenied:
        return False
    world.fs.write(inode, entry.encode() + b"\n")
    return True


@dataclass(frozen=True)
class BroadcastReport:
    """What one ``rwall`` broadcast did."""

    delivered_to: Tuple[str, ...]  # canonical paths written
    rejected: Tuple[str, ...]  # entries the daemon refused

    @property
    def wrote_non_terminal(self) -> bool:
        """Did any message land outside a terminal device?"""
        return any(not path.startswith(DEV_ROOT) for path in self.delivered_to)


class RwallDaemon:
    """Operation 2: the daemon delivering ``rwall`` messages."""

    def __init__(self, world: RwallWorld) -> None:
        self.world = world

    def utmp_entries(self) -> List[str]:
        """Parse the utmp file into entries (terminal names relative to
        ``/dev``)."""
        data = self.world.fs.read(UTMP_PATH, ROOT)
        return [line.decode() for line in data.splitlines() if line.strip()]

    def broadcast(self, message: bytes) -> BroadcastReport:
        """Write ``message`` to every utmp entry's target.

        The vulnerable daemon resolves each entry relative to ``/dev``
        and writes whatever it finds; ``../etc/passwd`` therefore
        escapes.  The type-checking variant rejects non-terminals —
        pFSM2's IMPL_REJ arm.
        """
        delivered: List[str] = []
        rejected: List[str] = []
        for entry in self.utmp_entries():
            target = normalize_path(f"{DEV_ROOT}/{entry}")
            if self.world.variant is RwallVariant.PATCHED_TYPECHECK:
                if not self.world.fs.is_terminal(target):
                    rejected.append(entry)
                    continue
            try:
                inode = self.world.fs.lookup(target)
            except Exception:
                rejected.append(entry)
                continue
            # The daemon runs as root; permissions never stop it.
            self.world.fs.write(inode, message)
            delivered.append(target)
        return BroadcastReport(
            delivered_to=tuple(delivered), rejected=tuple(rejected)
        )


def passwd_corrupted(world: RwallWorld, message: bytes) -> bool:
    """Did the broadcast land in /etc/passwd?"""
    return message in world.fs.read("/etc/passwd", ROOT)
