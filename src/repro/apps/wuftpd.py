"""wu-ftpd SITE EXEC remote format string (Bugtraq #1387).

The first of the paper's format-string classification trio (Observation
1): "#1387 wu-ftpd remote format string stack overwrite vulnerability",
assigned to *input validation* because the anchoring activity is
getting the user's input string.

The historical bug: ``SITE EXEC`` arguments flowed into
``lreply(200, cmd)`` — user input as the format.  The model parses FTP
command lines, routes ``SITE EXEC`` arguments into the reply formatter,
and (in the vulnerable variant) interprets them, so a ``%n`` payload
rewrites the command handler's saved return address exactly as in
rpc.statd.

Variants:

``VULNERABLE``
    ``lreply(200, args)`` — user input as format.
``PATCHED``
    ``lreply(200, "%s", args)`` — the upstream fix.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..memory import Process, StackSmashed, strcpy, vsprintf

__all__ = ["WuFtpdVariant", "FtpReply", "WuFtpd", "craft_site_exec_exploit"]

#: Stack buffer the reply line is composed in.
REPLY_BUFFER_SIZE = 256


class WuFtpdVariant(enum.Enum):
    """The lreply call shape."""

    VULNERABLE = "lreply(200, args): user input as format"
    PATCHED = 'lreply(200, "%s", args): input as data'


@dataclass(frozen=True)
class FtpReply:
    """Outcome of one FTP command."""

    code: int
    text: bytes = b""
    hijacked: bool = False
    returned_to: Optional[int] = None

    @property
    def ok(self) -> bool:
        """2xx reply."""
        return 200 <= self.code < 300


class WuFtpd:
    """The SITE EXEC path of the FTP daemon."""

    RETURN_SITE = 0x1500

    def __init__(self, variant: WuFtpdVariant = WuFtpdVariant.VULNERABLE
                 ) -> None:
        self.variant = variant
        self.process = Process(symbols=("exit",))

    def handle_command(self, line: bytes) -> FtpReply:
        """Parse and execute one FTP command line."""
        verb, _sep, rest = line.partition(b" ")
        verb = verb.upper()
        if verb == b"SITE":
            sub, _sep, args = rest.partition(b" ")
            if sub.upper() == b"EXEC":
                return self._site_exec(args)
            return FtpReply(code=500, text=b"unknown SITE command")
        if verb in (b"USER", b"PASS", b"QUIT", b"NOOP"):
            return FtpReply(code=200, text=b"ok")
        return FtpReply(code=502, text=b"command not implemented")

    def _site_exec(self, args: bytes) -> FtpReply:
        """The vulnerable reply path: format the arguments back to the
        client through lreply()."""
        frame = self.process.stack.push_frame(
            "lreply",
            return_address=self.RETURN_SITE,
            local_buffers={"reply": REPLY_BUFFER_SIZE},
        )
        buffer = frame.local_address("reply")
        strcpy(self.process.space, buffer, args, label="stack")
        if self.variant is WuFtpdVariant.PATCHED:
            result = vsprintf(self.process.space, b"200-%s", args=(args,))
        else:
            result = vsprintf(self.process.space, args, args=(),
                              vararg_base=buffer)
        try:
            returned_to = self.process.stack.pop_frame()
        except StackSmashed as smash:
            return FtpReply(code=200, text=result.output, hijacked=True,
                            returned_to=smash.hijacked_target)
        return FtpReply(code=200, text=result.output,
                        returned_to=returned_to)

    def lreply_return_slot(self) -> int:
        """The return-address slot the next lreply frame will use."""
        frame = self.process.stack.push_frame(
            "probe", return_address=0,
            local_buffers={"reply": REPLY_BUFFER_SIZE},
        )
        slot = frame.return_address_slot
        self.process.stack.pop_frame()
        return slot


def craft_site_exec_exploit(app: WuFtpd) -> bytes:
    """A ``SITE EXEC`` line whose arguments rewrite lreply's return
    address to planted Mcode (same single-write %n shape as the
    rpc.statd exploit)."""
    mcode = app.process.plant_mcode()
    slot = app.lreply_return_slot()
    width = mcode - 8
    if width <= 0:
        raise RuntimeError("layout places Mcode too low for a single write")
    payload = b"AAAA" + slot.to_bytes(4, "little")
    payload += b"%" + str(width).encode() + b"x%n"
    return b"SITE EXEC " + payload
