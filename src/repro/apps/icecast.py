"""icecast ``print_client()`` format string vulnerability (Bugtraq
#2264) — the *boundary condition* anchor of the paper's format trio.

Distinct mechanism from rpc.statd/wu-ftpd: here the danger is not a
``%n`` write but *expansion* — a width-specified directive like
``%500d`` expands a few input bytes into hundreds of output bytes, and
the formatted result is copied into a fixed 256-byte stack buffer.  The
directive content check (pFSM1) and the copy-bound check are both
missing, so the expansion walks over the saved return address — a stack
smash reached *through* the format interpreter, which is why the
Bugtraq analyst filed it under Boundary Condition Error.

Variants:

``VULNERABLE``
    format the client string, then unbounded copy into the buffer.
``PATCHED``
    the upstream fix: client data formatted via ``%s`` (no expansion)
    and the copy bounded to the buffer.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..memory import Process, StackSmashed, strcpy, strncpy, vsprintf

__all__ = ["IcecastVariant", "ClientResult", "Icecast",
           "craft_expansion_smash"]

#: The fixed reply buffer in print_client().
CLIENT_BUFFER_SIZE = 256


class IcecastVariant(enum.Enum):
    """Implementation variants of print_client()."""

    VULNERABLE = "format the client string; unbounded copy to the buffer"
    PATCHED = "format via %s; copy bounded to the buffer"


@dataclass(frozen=True)
class ClientResult:
    """Outcome of logging one client."""

    accepted: bool
    formatted_length: int = 0
    hijacked: bool = False
    returned_to: Optional[int] = None


class Icecast:
    """The print_client() path in a simulated process."""

    RETURN_SITE = 0x1600

    def __init__(self, variant: IcecastVariant = IcecastVariant.VULNERABLE
                 ) -> None:
        self.variant = variant
        self.process = Process(symbols=("exit",))

    def print_client(self, client_info: bytes) -> ClientResult:
        """Format and log one client's identification string."""
        frame = self.process.stack.push_frame(
            "print_client",
            return_address=self.RETURN_SITE,
            local_buffers={"buf": CLIENT_BUFFER_SIZE},
        )
        buffer = frame.local_address("buf")
        if self.variant is IcecastVariant.PATCHED:
            rendered = vsprintf(self.process.space, b"client: %s",
                                args=(client_info,)).output
            strncpy(self.process.space, buffer, rendered,
                    CLIENT_BUFFER_SIZE, label="stack")
        else:
            # The bug pair: expansion (user input as format) and an
            # unbounded copy of the expanded text.
            rendered = vsprintf(self.process.space, client_info, args=(),
                                vararg_base=buffer).output
            strcpy(self.process.space, buffer, rendered, label="stack")
        try:
            returned_to = self.process.stack.pop_frame()
        except StackSmashed as smash:
            return ClientResult(accepted=True,
                                formatted_length=len(rendered),
                                hijacked=True,
                                returned_to=smash.hijacked_target)
        return ClientResult(accepted=True, formatted_length=len(rendered),
                            returned_to=returned_to)


def craft_expansion_smash(app: Icecast) -> bytes:
    """A short client string whose width directive expands past the
    buffer, landing Mcode's address on the saved return word.

    The payload keeps the expansion printable padding and positions the
    pointer bytes exactly at the return-slot offset — computed from a
    probe frame, as a real exploit would from a core dump.
    """
    mcode = app.process.plant_mcode()
    probe = app.process.stack.push_frame(
        "probe", return_address=0,
        local_buffers={"buf": CLIENT_BUFFER_SIZE},
    )
    gap = probe.return_address_slot - probe.local_address("buf")
    app.process.stack.pop_frame()
    # Expand to exactly `gap` bytes, then append the pointer.
    lead = b"%" + str(gap).encode() + b"x"
    return lead + mcode.to_bytes(4, "little")
