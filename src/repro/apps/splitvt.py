"""splitvt format string vulnerability (Bugtraq #2210) — the *access
validation* anchor of the paper's format trio.

splitvt was a setuid-root terminal splitter; its format-string bug let
a local user aim a ``%n`` at a *function pointer* rather than a return
address.  The Bugtraq analyst, anchoring on the final activity —
an operation on an object (the pointer target) outside the user's
access domain — filed it under Access Validation Error.

The model keeps that distinguishing trait: the write target is an entry
in a dispatch table of screen-handler pointers, and the hijack fires on
the next screen refresh, not on function return.

Variants:

``VULNERABLE``
    user-controlled title string passed as a format.
``PATCHED``
    title rendered via ``%s``.
``GUARDED``
    format bug intact, but the refresh dispatch verifies the handler
    pointer before calling (reference-consistency at the last activity).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional

from ..memory import Process, WORD_SIZE, strcpy, vsprintf

__all__ = ["SplitvtVariant", "TitleResult", "RefreshResult", "Splitvt",
           "craft_handler_overwrite"]

#: Stack buffer the title line is staged in.
TITLE_BUFFER_SIZE = 128

#: Number of screen-handler slots.
HANDLER_SLOTS = 4


class SplitvtVariant(enum.Enum):
    """Implementation variants."""

    VULNERABLE = "title passed as format; unverified dispatch"
    PATCHED = "title rendered via %s"
    GUARDED = "format bug intact; dispatch verifies the handler pointer"


@dataclass(frozen=True)
class TitleResult:
    """Outcome of setting the window title."""

    wrote_memory: bool
    output_length: int


@dataclass(frozen=True)
class RefreshResult:
    """Outcome of a screen refresh (the dispatch)."""

    dispatched: bool
    handler: Optional[int] = None
    hijacked: bool = False
    reason: str = ""


class Splitvt:
    """The title/refresh fragment of splitvt."""

    def __init__(self, variant: SplitvtVariant = SplitvtVariant.VULNERABLE
                 ) -> None:
        self.variant = variant
        self.process = Process(symbols=("exit",))
        self.handler_table = self.process.place_global(
            "screen_handlers", HANDLER_SLOTS * WORD_SIZE
        )
        self._legitimate: Dict[int, int] = {}
        for slot in range(HANDLER_SLOTS):
            entry = self.process.code.start + 0xA00 + slot * 0x20
            self._legitimate[slot] = entry
            self.process.space.write_word(
                self.handler_table + slot * WORD_SIZE, entry,
                label="screen_handlers",
            )

    def set_title(self, title: bytes) -> TitleResult:
        """Render the user-supplied window title (the vulnerable call)."""
        frame = self.process.stack.push_frame(
            "set_title", return_address=0x1700,
            local_buffers={"title": TITLE_BUFFER_SIZE},
        )
        buffer = frame.local_address("title")
        strcpy(self.process.space, buffer, title, label="stack")
        if self.variant is SplitvtVariant.PATCHED:
            result = vsprintf(self.process.space, b"%s", args=(title,))
        else:
            result = vsprintf(self.process.space, title, args=(),
                              vararg_base=buffer)
        self.process.stack.pop_frame()
        return TitleResult(wrote_memory=result.wrote_memory,
                           output_length=len(result.output))

    def refresh(self, slot: int = 0) -> RefreshResult:
        """Dispatch a screen refresh through the handler table."""
        address = self.handler_table + slot * WORD_SIZE
        pointer = self.process.space.read_word(address)
        legitimate = pointer in self._legitimate.values()
        if self.variant is SplitvtVariant.GUARDED and not legitimate:
            return RefreshResult(dispatched=False,
                                 reason="handler pointer failed verification")
        if legitimate:
            return RefreshResult(dispatched=True, handler=pointer)
        return RefreshResult(dispatched=True, handler=pointer, hijacked=True,
                             reason="refresh through corrupted handler")

    def handler_slot_address(self, slot: int = 0) -> int:
        """Address of a handler-table entry (the %n target)."""
        return self.handler_table + slot * WORD_SIZE

    def handler_consistent(self, slot: int = 0) -> bool:
        """Reference-consistency predicate over one handler slot."""
        pointer = self.process.space.read_word(self.handler_slot_address(slot))
        return pointer == self._legitimate[slot]


def craft_handler_overwrite(app: Splitvt, slot: int = 0) -> bytes:
    """A title whose ``%n`` rewrites handler ``slot`` to planted Mcode
    (same single-write layout as the statd exploit: filler word, target
    word, padded %x, %n)."""
    mcode = app.process.plant_mcode()
    target = app.handler_slot_address(slot)
    width = mcode - 8
    if width <= 0:
        raise RuntimeError("layout places Mcode too low for a single write")
    payload = b"AAAA" + target.to_bytes(4, "little")
    payload += b"%" + str(width).encode() + b"x%n"
    return payload
