"""Registry of the modeled applications and their Bugtraq identities.

Maps each case study to its Bugtraq IDs, vulnerability class, the
paper's figure/section, and the module implementing it — the index the
benchmarks and the Table 2 reproduction iterate over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..core.classification import BugtraqCategory

__all__ = ["AppRecord", "APP_REGISTRY", "by_bugtraq_id"]


@dataclass(frozen=True)
class AppRecord:
    """One modeled application / case study."""

    key: str
    title: str
    bugtraq_ids: Tuple[int, ...]
    vulnerability_class: str
    paper_reference: str
    assigned_category: BugtraqCategory
    module: str


APP_REGISTRY: Dict[str, AppRecord] = {
    record.key: record
    for record in [
        AppRecord(
            key="sendmail",
            title="Sendmail Debugging Function Signed Integer Overflow",
            bugtraq_ids=(3163,),
            vulnerability_class="signed integer overflow",
            paper_reference="Section 4, Figure 3, Table 1",
            assigned_category=BugtraqCategory.INPUT_VALIDATION,
            module="repro.apps.sendmail",
        ),
        AppRecord(
            key="nullhttpd",
            title="NULL HTTPD Heap Overflow",
            bugtraq_ids=(5774, 6255),
            vulnerability_class="heap overflow",
            paper_reference="Section 5.1, Figure 4",
            assigned_category=BugtraqCategory.BOUNDARY_CONDITION,
            module="repro.apps.nullhttpd",
        ),
        AppRecord(
            key="xterm",
            title="xterm Log File Race Condition",
            bugtraq_ids=(),
            vulnerability_class="file race condition",
            paper_reference="Section 5.2, Figure 5",
            assigned_category=BugtraqCategory.RACE_CONDITION,
            module="repro.apps.xterm",
        ),
        AppRecord(
            key="rwall",
            title="Solaris Rwall Arbitrary File Corruption",
            bugtraq_ids=(),
            vulnerability_class="access/type validation",
            paper_reference="Section 5.3, Figure 6 (CERT CA-1994-06)",
            assigned_category=BugtraqCategory.ACCESS_VALIDATION,
            module="repro.apps.rwalld",
        ),
        AppRecord(
            key="iis",
            title="IIS Superfluous Filename Decoding",
            bugtraq_ids=(2708,),
            vulnerability_class="input validation",
            paper_reference="Section 5.4, Figure 7",
            assigned_category=BugtraqCategory.INPUT_VALIDATION,
            module="repro.apps.iis",
        ),
        AppRecord(
            key="ghttpd",
            title="GHTTPD Log() Stack Buffer Overflow",
            bugtraq_ids=(5960,),
            vulnerability_class="stack buffer overflow",
            paper_reference="Section 5.4 / extended report [21]",
            assigned_category=BugtraqCategory.BOUNDARY_CONDITION,
            module="repro.apps.ghttpd",
        ),
        AppRecord(
            key="rpc_statd",
            title="Multiple Linux Vendor rpc.statd Remote Format String",
            bugtraq_ids=(1480,),
            vulnerability_class="format string",
            paper_reference="Section 5.4 / extended report [21]",
            assigned_category=BugtraqCategory.INPUT_VALIDATION,
            module="repro.apps.rpc_statd",
        ),
        AppRecord(
            key="freebsd",
            title="FreeBSD System Call Signed Integer Buffer Overflow",
            bugtraq_ids=(5493,),
            vulnerability_class="signed integer overflow",
            paper_reference="Table 1, row 2",
            assigned_category=BugtraqCategory.BOUNDARY_CONDITION,
            module="repro.apps.freebsd_syscall",
        ),
        AppRecord(
            key="rsync",
            title="rsync Signed Array Index Remote Code Execution",
            bugtraq_ids=(3958,),
            vulnerability_class="signed integer overflow",
            paper_reference="Table 1, row 3",
            assigned_category=BugtraqCategory.ACCESS_VALIDATION,
            module="repro.apps.rsync_daemon",
        ),
        AppRecord(
            key="icecast",
            title="icecast print_client() Format String",
            bugtraq_ids=(2264,),
            vulnerability_class="format string",
            paper_reference="Observation 1 (format-string trio)",
            assigned_category=BugtraqCategory.BOUNDARY_CONDITION,
            module="repro.apps.icecast",
        ),
        AppRecord(
            key="splitvt",
            title="splitvt Format String Vulnerability",
            bugtraq_ids=(2210,),
            vulnerability_class="format string",
            paper_reference="Observation 1 (format-string trio)",
            assigned_category=BugtraqCategory.ACCESS_VALIDATION,
            module="repro.apps.splitvt",
        ),
        AppRecord(
            key="wuftpd",
            title="wu-ftpd SITE EXEC Remote Format String",
            bugtraq_ids=(1387,),
            vulnerability_class="format string",
            paper_reference="Observation 1 (format-string trio)",
            assigned_category=BugtraqCategory.INPUT_VALIDATION,
            module="repro.apps.wuftpd",
        ),
    ]
}


def by_bugtraq_id(bugtraq_id: int) -> AppRecord:
    """Look up the case study covering a Bugtraq ID."""
    for record in APP_REGISTRY.values():
        if bugtraq_id in record.bugtraq_ids:
            return record
    raise KeyError(f"no modeled application covers Bugtraq #{bugtraq_id}")
