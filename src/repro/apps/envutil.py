"""A setuid utility with a PATH-hijack environment error.

Demonstrates that the pFSM method covers Figure 1's *Environment Error*
category (the paper: the remaining categories "can also be modeled, if
the predicates are derived ...").  The scenario is the canonical one:

* ``diskreport`` is a setuid-root utility; to timestamp its report it
  runs ``system("date")``.
* ``system`` resolves the bare name through the invoking user's
  ``PATH``.
* The attacker prepends a directory holding their own executable named
  ``date``; the utility — root — runs it.

Both modules are individually correct (the utility calls a standard
helper; the loader follows PATH); the composition under a hostile
environment is the vulnerability.

Variants:

``VULNERABLE``
    uses the caller's environment unchanged.
``PATCHED``
    resets PATH to the trusted directories before spawning (the
    standard setuid hygiene).
``GUARDED``
    PATH left alone, but the resolved binary is verified to live in a
    trusted directory before exec (reference-consistency at the last
    activity).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..osmodel import FileSystem, ROOT, User
from ..osmodel.environment import Environment, TRUSTED_PATH, resolve_command

__all__ = ["EnvUtilVariant", "ExecutionRecord", "SetuidUtility",
           "make_world", "plant_trojan", "EnvWorld"]


class EnvUtilVariant(enum.Enum):
    """How the utility treats the ambient environment."""

    VULNERABLE = "spawns helpers through the caller's PATH"
    PATCHED = "resets PATH to the trusted directories first"
    GUARDED = "verifies the resolved binary's location before exec"


@dataclass(frozen=True)
class ExecutionRecord:
    """What the utility actually executed."""

    executed: bool
    binary: Optional[str] = None
    as_uid: int = 0
    reason: str = ""

    @property
    def ran_untrusted_as_root(self) -> bool:
        """The compromise signature: a binary outside the trusted
        directories executed with uid 0."""
        if not self.executed or self.binary is None or self.as_uid != 0:
            return False
        return not any(
            self.binary.startswith(prefix.rstrip("/") + "/")
            for prefix in TRUSTED_PATH
        )


@dataclass
class EnvWorld:
    """Filesystem with the system date binary and an attacker directory."""

    fs: FileSystem
    attacker: User


def make_world() -> EnvWorld:
    """System binaries in /bin; a world-writable /tmp for the attacker."""
    fs = FileSystem()
    attacker = User.regular("mallory", 1001)
    fs.mkdirs("/bin", ROOT)
    fs.mkdirs("/usr/bin", ROOT)
    fs.create_file("/bin/date", ROOT, 0o755, data=b"#!system date\n")
    fs.mkdirs("/tmp", ROOT)
    fs.lookup("/tmp").mode = 0o777  # the usual sticky world-writable /tmp
    return EnvWorld(fs=fs, attacker=attacker)


def plant_trojan(world: EnvWorld, directory: str = "/tmp/evil") -> str:
    """The attacker's move: an executable named ``date`` in their own
    directory.  Returns the trojan's path."""
    world.fs.mkdirs(directory, world.attacker)
    path = f"{directory}/date"
    world.fs.create_file(path, world.attacker, 0o755,
                         data=b"#!trojan: add root account\n")
    return path


class SetuidUtility:
    """The privileged utility's helper-spawn path."""

    def __init__(self, world: EnvWorld,
                 variant: EnvUtilVariant = EnvUtilVariant.VULNERABLE) -> None:
        self.world = world
        self.variant = variant

    def run_report(self, caller_env: Environment) -> ExecutionRecord:
        """Generate the report: resolves and 'executes' ``date`` with
        root privilege, under the caller's environment."""
        env = caller_env
        if self.variant is EnvUtilVariant.PATCHED:
            env = caller_env.with_sanitized_path()
        binary = resolve_command(self.world.fs, env, "date", ROOT)
        if binary is None:
            return ExecutionRecord(executed=False, reason="date not found")
        if self.variant is EnvUtilVariant.GUARDED:
            trusted = any(
                binary.startswith(prefix.rstrip("/") + "/")
                for prefix in TRUSTED_PATH
            )
            if not trusted:
                return ExecutionRecord(
                    executed=False, binary=binary,
                    reason="resolved binary outside the trusted directories",
                )
        return ExecutionRecord(executed=True, binary=binary, as_uid=0)
