"""NULL HTTPD heap overflows: the known Bugtraq #5774 and the paper's
newly-discovered #6255.

Figure 4b of the paper lists the vulnerable ``ReadPOSTData``::

    1: PostData = calloc(contentLen+1024, sizeof(char)); x=0; rc=0;
    2: pPostData = PostData;
    3: do {
    4:   rc = recv(sid, pPostData, 1024, 0);
    5:   if (rc == -1) { closeconnect(sid, 1); return; }
    9:   pPostData += rc;
    10:  x += rc;
    11: } while ((rc == 1024) || (x < contentLen));

Two distinct bugs live here:

* **#5774 (version 0.5)** — ``contentLen`` is never checked for
  negativity; ``calloc(contentLen + 1024, 1)`` with ``contentLen = -800``
  yields a 224-byte buffer while the loop happily copies at least 1024
  bytes.
* **#6255 (version 0.5.1, discovered by the paper's authors)** —
  version 0.5.1 blocks negative ``contentLen`` *before* calling
  ``ReadPOSTData``, but the loop's ``||`` should be ``&&``: as long as
  full 1024-byte chunks keep arriving, the copy continues past
  ``contentLen`` — a correct ``contentLen`` with an over-long body still
  overflows.

The model executes the copy against the simulated heap, so the overflow
really lands on the free chunk following ``PostData``, and ``free()``'s
consolidation really performs the unlink write into the GOT.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..memory import (
    CHUNK_HEADER_SIZE,
    BK_OFFSET,
    HeapCorruptionDetected,
    Int32,
    Process,
)
from ..osmodel import RECV_ERROR, SimulatedSocket

__all__ = [
    "NullHttpdVariant",
    "RequestOutcome",
    "NullHttpd",
    "craft_unlink_body",
    "RECV_CHUNK",
]

#: The server's per-recv chunk size (source line 4).
RECV_CHUNK = 1024


class NullHttpdVariant(enum.Enum):
    """The three implementations the paper distinguishes."""

    V0_5 = "0.5: no contentLen check, || loop (Bugtraq #5774)"
    V0_5_1 = "0.5.1: contentLen >= 0 enforced, || loop (Bugtraq #6255)"
    FIXED = "contentLen >= 0 enforced, && loop"


@dataclass(frozen=True)
class RequestOutcome:
    """Result of serving one POST request."""

    accepted: bool
    reason: str = ""
    post_data_address: Optional[int] = None
    buffer_size: int = 0
    bytes_copied: int = 0

    @property
    def overflowed(self) -> bool:
        """Did the copy exceed the allocation?"""
        return self.accepted and self.bytes_copied > self.buffer_size


class NullHttpd:
    """The NULL HTTPD POST path inside a simulated process.

    Parameters
    ----------
    variant:
        Which implementation to run.
    check_unlink:
        Run the hardened allocator (safe unlink) — the pFSM3 defense.
    """

    #: Upper bound 0.5.1 also applies to contentLen (sanity cap).
    MAX_CONTENT_LEN = 1 << 20

    def __init__(
        self,
        variant: NullHttpdVariant = NullHttpdVariant.V0_5,
        check_unlink: bool = False,
    ) -> None:
        self.variant = variant
        self.process = Process(symbols=("free", "exit"), check_unlink=check_unlink)
        self.post_data: Optional[int] = None
        self._post_data_size = 0

    # -- request entry point -------------------------------------------------

    def handle_post(self, content_len: int, body: bytes) -> RequestOutcome:
        """Serve a POST: validate ``contentLen`` (variant-dependent), then
        run ``ReadPOSTData`` against a socket delivering ``body``."""
        if self.variant in (NullHttpdVariant.V0_5_1, NullHttpdVariant.FIXED):
            # The 0.5.1 fix: block negative contentLen before ReadPOSTData.
            if content_len < 0 or content_len > self.MAX_CONTENT_LEN:
                return RequestOutcome(False, reason="bad Content-Length")
        socket = SimulatedSocket(body)
        return self.read_post_data(socket, content_len)

    # -- the Figure 4b routine ---------------------------------------------------

    def read_post_data(
        self, socket: SimulatedSocket, content_len: int
    ) -> RequestOutcome:
        """Line-by-line port of the paper's source listing.

        The allocation size is computed in a 32-bit signed int, exactly
        as ``calloc(contentLen + 1024, sizeof(char))`` would see it.
        """
        alloc = (Int32(content_len) + 1024).value  # line 1
        if alloc < 0:
            # calloc sees a gigantic size_t and fails; the 2003 code did
            # not get this far because -800 + 1024 is still positive —
            # retained for completeness with very negative contentLen.
            return RequestOutcome(False, reason="calloc failed")
        self._stage_heap_neighbourhood(alloc)
        post_data = self.process.heap.calloc(alloc, 1)
        self.post_data = post_data
        self._post_data_size = self.process.heap.allocation_size(post_data)
        p_post_data = post_data  # line 2
        x = 0
        while True:  # line 3 (do { ... })
            rc, chunk = socket.recv(RECV_CHUNK)  # line 4
            if rc == RECV_ERROR:  # line 5
                return RequestOutcome(False, reason="recv error",
                                      post_data_address=post_data,
                                      buffer_size=self._post_data_size,
                                      bytes_copied=x)
            if rc == 0:
                # Orderly shutdown: the 2003 code would block forever; the
                # model terminates the loop (no more bytes can arrive).
                break
            self.process.space.write(p_post_data, chunk, label="heap")
            p_post_data += rc  # line 9
            x += rc  # line 10
            if not self._loop_continues(rc, x, content_len):  # line 11
                break
        return RequestOutcome(
            accepted=True,
            post_data_address=post_data,
            buffer_size=self._post_data_size,
            bytes_copied=x,
        )

    def _loop_continues(self, rc: int, x: int, content_len: int) -> bool:
        if self.variant is NullHttpdVariant.FIXED:
            return rc == RECV_CHUNK and x < content_len
        # The || that should have been && — Bugtraq #6255.
        return rc == RECV_CHUNK or x < content_len

    def _stage_heap_neighbourhood(self, alloc: int) -> None:
        """Arrange the Figure 4 heap layout: a free chunk immediately
        follows PostData.

        A real server reaches this layout through earlier connection
        buffers; we reproduce it by allocating and freeing a neighbour.
        The PostData allocation then comes from the wilderness, the
        neighbour slot after it is freed once PostData exists.
        """
        # Allocate PostData's eventual neighbours now so the free chunk
        # sits just past where PostData will land.
        placeholder = self.process.heap.malloc(alloc)
        neighbour = self.process.heap.malloc(128)  # becomes free chunk B
        self.process.heap.malloc(64)  # guard chunk C (stays allocated)
        self.process.heap.free(placeholder)
        self.process.heap.free(neighbour)

    # -- downstream operations (Figure 4, operations 2 and 3) ----------------------

    def free_post_data(self) -> None:
        """Free PostData — consolidation unlinks the (possibly corrupted)
        neighbouring free chunk.

        With corrupted links and the stock allocator, this performs the
        attacker's arbitrary write.  With the hardened allocator it
        raises :class:`~repro.memory.heap.HeapCorruptionDetected`.
        """
        if self.post_data is None:
            raise RuntimeError("no PostData allocated")
        self.process.heap.free(self.post_data)
        self.post_data = None

    def call_free(self, check_consistency: bool = False) -> int:
        """The next ``free()`` call dispatches through the (possibly
        corrupted) GOT — the pFSM4 activity."""
        return self.process.got.call("free", check_consistency=check_consistency)

    # -- predicates bound to live state ------------------------------------------------

    def heap_links_consistent(self) -> bool:
        """pFSM3's predicate over the real heap."""
        return self.process.heap_links_consistent()

    def got_free_consistent(self) -> bool:
        """pFSM4's predicate: is ``addr_free`` unchanged?"""
        return self.process.got_consistent("free")

    @property
    def post_data_size(self) -> int:
        """Size of the live PostData allocation."""
        return self._post_data_size


def craft_unlink_body(app: NullHttpd, content_len: int) -> bytes:
    """Build a POST body that overflows PostData into the following free
    chunk's ``fd``/``bk`` links, aiming the unlink write at the GOT entry
    of ``free()``.

    Reproduces the paper's footnote 7: the attacker sets
    ``B->fd = &addr_free - (offset of field bk)`` and ``B->bk = Mcode``
    so that ``B->fd->bk = B->bk`` executes ``addr_free = Mcode``.

    The body is computed from the same deterministic layout the server
    will create for ``content_len`` (buffer size, chunk alignment), as a
    real exploit script would from debugger observation.
    """
    mcode = app.process.plant_mcode()
    addr_free = app.process.got.entry_address("free")
    fd = addr_free - BK_OFFSET
    bk = mcode

    # Predict the buffer size the server will allocate.
    alloc = (Int32(content_len) + 1024).value
    user_size = max(
        (alloc + CHUNK_HEADER_SIZE + 7) // 8 * 8, 16
    ) - CHUNK_HEADER_SIZE

    # The free chunk B sits immediately after PostData's chunk: its
    # header is the 8 bytes past the user buffer.  Keep B's size word
    # free-flagged (any aligned size with bit 0 clear) so consolidation
    # still fires, then supply the malicious links.
    b_size_word = (128 + CHUNK_HEADER_SIZE).to_bytes(4, "little")
    body = b"A" * user_size
    body += b_size_word + b"\x00" * 4  # B's header (size + reserved)
    body += fd.to_bytes(4, "little") + bk.to_bytes(4, "little")
    return body
