"""GHTTPD ``Log()`` stack buffer overflow (Bugtraq #5960).

The paper analyzes this vulnerability in its extended report [21] and
summarises it in Table 2: pFSM1 is the content check "size(message) <=
200?" and pFSM2 the reference-consistency check "is the return address
unchanged?".  The ``Log()`` function formats the request line into a
200-byte stack buffer with an unbounded copy; an over-long request
walks up the frame into the saved return address.

Variants:

``VULNERABLE``
    The 2003 code — no length check, plain frame.
``PATCHED``
    Checks ``len(request) < 200`` before copying (the pFSM1 fix).
``STACKGUARD``
    No length check, but a canary word between the locals and the
    return address, verified on return (the paper's cited StackGuard
    defense [15] — a pFSM2-level foil).
``SPLITSTACK``
    No length check; the return address is *also* kept on a protected
    shadow stack and restored from there on return (the split-stack /
    return-address-stack defense of [16]).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from ..memory import Process, StackSmashed, strcpy

__all__ = ["GhttpdVariant", "ServeResult", "Ghttpd", "craft_stack_smash"]

#: The Log() buffer size in the original source.
LOG_BUFFER_SIZE = 200

#: Deterministic canary for the STACKGUARD variant.
_CANARY = 0x000AFF0D


class GhttpdVariant(enum.Enum):
    """Implementation/defense variants of the Log() path."""

    VULNERABLE = "no length check, bare frame"
    PATCHED = "length(request) < 200 enforced"
    STACKGUARD = "canary between locals and return address"
    SPLITSTACK = "return address restored from shadow stack"


@dataclass(frozen=True)
class ServeResult:
    """Outcome of serving one request through Log()."""

    accepted: bool
    returned_to: Optional[int] = None
    hijacked: bool = False
    reason: str = ""


class Ghttpd:
    """The GHTTPD logging path in a simulated process."""

    #: Where a legitimate Log() invocation returns to.
    RETURN_SITE = 0x1400

    def __init__(self, variant: GhttpdVariant = GhttpdVariant.VULNERABLE) -> None:
        self.variant = variant
        self.process = Process(symbols=("exit",))
        self._shadow_stack: List[int] = []

    def serve(self, request: bytes) -> ServeResult:
        """Handle one request: enter Log(), copy the request line into
        the 200-byte local, return."""
        if self.variant is GhttpdVariant.PATCHED and len(request) >= LOG_BUFFER_SIZE:
            return ServeResult(accepted=False, reason="request line too long")
        canary = _CANARY if self.variant is GhttpdVariant.STACKGUARD else None
        frame = self.process.stack.push_frame(
            "Log",
            return_address=self.RETURN_SITE,
            local_buffers={"temp": LOG_BUFFER_SIZE},
            canary=canary,
        )
        if self.variant is GhttpdVariant.SPLITSTACK:
            self._shadow_stack.append(self.RETURN_SITE)
        strcpy(self.process.space, frame.local_address("temp"), request,
               label="stack")
        try:
            returned_to = self.process.stack.pop_frame()
        except StackSmashed as smash:
            if self.variant is GhttpdVariant.SPLITSTACK:
                # The shadow stack overrides the corrupted in-memory word.
                return ServeResult(accepted=True,
                                   returned_to=self._shadow_stack.pop(),
                                   hijacked=False,
                                   reason="return address restored from shadow")
            return ServeResult(accepted=True, returned_to=smash.hijacked_target,
                               hijacked=True, reason="return address smashed")
        except ValueError as abort:  # canary detection
            return ServeResult(accepted=False, reason=str(abort))
        if self.variant is GhttpdVariant.SPLITSTACK:
            self._shadow_stack.pop()
        return ServeResult(accepted=True, returned_to=returned_to)

    # -- predicates bound to live state ----------------------------------------

    def return_address_consistent(self) -> bool:
        """pFSM2's predicate over the live frame (meaningful between the
        copy and the return; exposed for FSM binding in tests)."""
        return self.process.return_address_consistent()


def craft_stack_smash(app: Ghttpd) -> bytes:
    """A request that overwrites Log()'s saved return address with the
    address of planted Mcode.

    Frame layout above the 200-byte buffer: saved frame pointer (4),
    optional canary (4), return address (4).  The payload pads through
    whatever sits between buffer and return slot, then supplies the
    Mcode pointer.
    """
    mcode = app.process.plant_mcode()
    # Distance from buffer start to return-address slot depends on the
    # variant's frame shape; compute it from a probe frame.
    probe = app.process.stack.push_frame(
        "probe",
        return_address=0,
        local_buffers={"temp": LOG_BUFFER_SIZE},
        canary=_CANARY if app.variant is GhttpdVariant.STACKGUARD else None,
    )
    gap = probe.return_address_slot - probe.local_address("temp")
    app.process.stack.pop_frame(check_canary=False)
    return b"A" * gap + mcode.to_bytes(4, "little")
