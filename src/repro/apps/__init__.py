"""Faithful models of the vulnerable applications the paper examines.

Each module ports the relevant routine of the original C program onto
the simulated substrates (``repro.memory``, ``repro.osmodel``), with the
original bug intact in the ``VULNERABLE`` variant and the paper's
prescribed checks in the patched/defended variants.  Exploits *execute*:
control-flow hijacks, file corruptions, and overflows are observable
effects, not flags.
"""

from .envutil import (
    EnvUtilVariant,
    EnvWorld,
    ExecutionRecord,
    SetuidUtility,
    make_world as make_env_world,
    plant_trojan,
)
from .freebsd_syscall import (
    FreebsdKernel,
    FreebsdVariant,
    MAX_REQUEST,
    SyscallResult,
    craft_cred_overwrite,
)
from .ghttpd import Ghttpd, GhttpdVariant, ServeResult, craft_stack_smash
from .icecast import ClientResult, Icecast, IcecastVariant, craft_expansion_smash
from .splitvt import (
    RefreshResult,
    Splitvt,
    SplitvtVariant,
    TitleResult,
    craft_handler_overwrite,
)
from .rsync_daemon import (
    DispatchResult,
    RsyncDaemon,
    RsyncVariant,
    TABLE_SIZE,
    craft_negative_opcode,
)
from .wuftpd import FtpReply, WuFtpd, WuFtpdVariant, craft_site_exec_exploit
from .iis import CgiOutcome, IisServer, IisVariant, SCRIPTS_ROOT, percent_decode
from .nullhttpd import (
    NullHttpd,
    NullHttpdVariant,
    RECV_CHUNK,
    RequestOutcome,
    craft_unlink_body,
)
from .registry import APP_REGISTRY, AppRecord, by_bugtraq_id
from .rpc_statd import NotifyResult, RpcStatd, StatdVariant, craft_format_exploit
from .rwalld import (
    BroadcastReport,
    RwallDaemon,
    RwallVariant,
    RwallWorld,
    add_utmp_entry,
    make_world as make_rwall_world,
    passwd_corrupted,
)
from .sendmail import Sendmail, SendmailVariant, TTflagResult, craft_got_exploit
from .xterm import (
    XtermLogger,
    XtermVariant,
    XtermWorld,
    build_race_scheduler,
)

__all__ = [
    "EnvUtilVariant",
    "EnvWorld",
    "ExecutionRecord",
    "SetuidUtility",
    "make_env_world",
    "plant_trojan",
    "FreebsdKernel",
    "FreebsdVariant",
    "MAX_REQUEST",
    "SyscallResult",
    "craft_cred_overwrite",
    "DispatchResult",
    "RsyncDaemon",
    "RsyncVariant",
    "TABLE_SIZE",
    "craft_negative_opcode",
    "FtpReply",
    "WuFtpd",
    "WuFtpdVariant",
    "craft_site_exec_exploit",
    "ClientResult",
    "Icecast",
    "IcecastVariant",
    "craft_expansion_smash",
    "RefreshResult",
    "Splitvt",
    "SplitvtVariant",
    "TitleResult",
    "craft_handler_overwrite",
    "Ghttpd",
    "GhttpdVariant",
    "ServeResult",
    "craft_stack_smash",
    "CgiOutcome",
    "IisServer",
    "IisVariant",
    "SCRIPTS_ROOT",
    "percent_decode",
    "NullHttpd",
    "NullHttpdVariant",
    "RECV_CHUNK",
    "RequestOutcome",
    "craft_unlink_body",
    "APP_REGISTRY",
    "AppRecord",
    "by_bugtraq_id",
    "NotifyResult",
    "RpcStatd",
    "StatdVariant",
    "craft_format_exploit",
    "BroadcastReport",
    "RwallDaemon",
    "RwallVariant",
    "RwallWorld",
    "add_utmp_entry",
    "make_rwall_world",
    "passwd_corrupted",
    "Sendmail",
    "SendmailVariant",
    "TTflagResult",
    "craft_got_exploit",
    "XtermLogger",
    "XtermVariant",
    "XtermWorld",
    "build_race_scheduler",
]
