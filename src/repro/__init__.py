"""repro — a reproduction of "A Data-Driven Finite State Machine Model
for Analyzing Security Vulnerabilities" (Chen, Kalbarczyk, Xu, Iyer;
DSN 2003).

Packages
--------
``repro.core``
    The pFSM methodology: primitive FSMs, operations, cascaded
    vulnerability models with propagation gates, hidden-path analysis,
    the Lemma, the discovery engine, and the two taxonomies.
``repro.memory``
    Simulated process memory: C integers, address space, stack, heap
    (with the unlink write primitive), GOT, printf-with-%n.
``repro.osmodel``
    Simulated OS: filesystem with symlinks/permissions/terminals, users,
    an interleaving scheduler for races, sockets with recv semantics.
``repro.apps``
    Faithful models of the vulnerable applications (Sendmail, NULL
    HTTPD, xterm, rwalld, IIS, GHTTPD, rpc.statd), each with vulnerable
    and patched variants, whose exploits *execute*.
``repro.bugtraq``
    The data side: report schema, curated corpus of the paper's
    vulnerabilities, synthetic full-scale database matching Figure 1,
    and the Section 3 statistics.
``repro.defenses``
    StackGuard, split-stack, bounds-checked copies, format filtering,
    heap integrity — the checks the paper maps to elementary activities.
``repro.models``
    Prebuilt models for every figure and Table 2 row.
``repro.obs``
    Engine telemetry: hierarchical spans, counters/gauges, and pluggable
    sinks (memory, JSONL, console) behind a disabled-by-default registry.
``repro.faults``
    Deterministic, seedable fault injection: a process-ambient
    ``FaultPlan`` consulted by taps in the cluster wire path, worker
    chunk execution, dist dispatch, serving, and the result stores
    (``repro … --faults SPEC`` / ``REPRO_FAULTS``).
``repro.serve``
    The analysis service: a resident asyncio server with admission
    control, single-flight coalescing, micro-batched dispatch, a tiered
    result cache, and graceful drain (``repro serve`` / ``repro query``).
"""

from . import (apps, bugtraq, core, defenses, faults, memory, models, obs,
               osmodel, serve)

__version__ = "1.0.0"

__all__ = [
    "apps",
    "bugtraq",
    "core",
    "defenses",
    "faults",
    "memory",
    "models",
    "obs",
    "osmodel",
    "serve",
    "__version__",
]
