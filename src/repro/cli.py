"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    The prebuilt paper models and their Bugtraq identities.
``stats``
    Figure 1's category breakdown and the 22% studied-family share.
``table1``
    The category-ambiguity demonstration.
``model NAME``
    Render a model (ASCII by default, ``--dot`` for Graphviz,
    ``--json`` for the structural serialization).
``trace NAME``
    Run the model's exploit (or ``--benign``) and print the trace.
    ``trace export OUT.json --input EVENTS.jsonl`` instead converts a
    telemetry JSONL file (``--trace-file`` / ``repro serve
    --trace-file``) into Chrome trace-event JSON for
    ``chrome://tracing`` / Perfetto.
``foil NAME``
    The single-activity fixes that stop the model's exploit.
``statespace NAME``
    Unroll the model, report reachability, exploit paths, and the cut
    set (``--dot`` for the graph).
``table2``
    The generic pFSM type grid.
``discover``
    Re-run the §5.1 sweep that found Bugtraq #6255.
``sweep``
    Hidden-path sweep across every bundled model via the batched,
    cached, parallel engine (``--workers N``, ``--no-cache``,
    ``--json``).  ``--backend {thread,process,queue,cluster,auto}``
    selects the executor — process and queue run on the distributed
    scheduler in ``repro.core.dist``; cluster starts a coordinator
    (``--listen HOST:PORT``, optionally ``--wait-workers N`` /
    ``--lease-timeout S``) and fans chunks out to ``repro worker``
    agents — and ``--resume-from PATH`` reuses results
    recorded in a JSONL store keyed by model fingerprint and
    predicate-spec hash.  ``--explain`` prints each task's chosen scan
    strategy, estimated cost, and CSE reuse (the decisions of the
    planner in ``repro.core.plan``; also the ``plans`` block of
    ``--json``), with tasks served whole from the dist fingerprint memo
    tagged ``memo``; ``--no-plan`` disables the predicate compiler for
    the run, ``--no-columnar`` the columnar domain engine
    (``repro.core.columnar``), and ``--scan-window N`` sizes the bulk
    predicate-cache window of compiled scans.  ``--fail-on-witness``
    exits nonzero when any hidden-path witness is found, so CI can gate
    on "no hidden paths".
``serve``
    Run the long-lived analysis service (``repro.serve``): bounded
    admission queue (``--max-depth``), micro-batching window
    (``--batch-window``/``--max-batch``), engine backend/workers, an
    optional JSONL result store (``--store``), and a graceful
    SIGTERM/SIGINT drain.  ``GET /healthz`` and ``GET /metrics``
    (Prometheus text; ``/metrics.json`` for the JSON snapshot) answer
    on the same port.  ``--trace`` turns on end-to-end request tracing
    (``--trace-sample``/``--trace-slow-ms`` tune head sampling and the
    tail slow-keep rule); ``--latency-buckets`` overrides the stage
    histogram bounds.
``query``
    Client for ``repro serve``: query one or more models (or ``all``)
    with per-request ``--deadline-ms``; ``--metrics`` prints the
    server's metrics snapshot instead.  ``--trace`` asks a tracing
    server for the per-request stage timeline and prints it.
    ``--connect-timeout SECONDS`` bounds connection establishment — a
    down server exits 2 with a clear message instead of hanging for
    the OS default.  Exit code 0 = all ok, 2 = at least one request
    was shed (overloaded/timeout/draining) or the server was
    unreachable under ``--connect-timeout``, 1 = error.
``worker``
    Cluster worker agent (``repro worker --connect HOST:PORT``): claim
    sweep chunks from a coordinator — ``repro sweep --backend cluster
    --listen`` or ``repro serve --backend cluster`` — execute them on
    a local warm process pool (``--workers N`` slots), and stream
    results and trace spans back.  Leases held by an agent that dies
    are reclaimed and its chunks re-executed elsewhere; see
    ``repro.cluster``.

Every subcommand also understands the telemetry flags:

``--profile``
    Record spans/counters during the command and print a
    human-readable summary (span aggregates, counters, cache hit rate,
    interval fast-path coverage) afterwards.  ``--profile-sort``
    orders the span table by total, self, or count.
``--trace-file PATH``
    Write every telemetry event as one JSON line to ``PATH``, ending
    with a ``{"type": "summary"}`` counter snapshot.

``repro --version`` prints the package version.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, Optional, Sequence

from .bugtraq import (
    BugtraqDatabase,
    figure1_breakdown,
    remote_share,
    studied_family_share,
    table1_ambiguity,
)
from .core import (
    build_state_space,
    minimal_foil_points,
    model_to_json,
    render_model,
    to_dot,
)
from .models import (
    all_extended_benign_inputs as all_benign_inputs,
    all_extended_exploit_inputs as all_exploit_inputs,
    all_extended_models as all_paper_models,
    all_extended_pfsm_domains as all_pfsm_domains,
    table2_grid,
)
from .serve.corpus import MODEL_KEYS as _MODEL_KEYS

__all__ = ["main"]


def _positive_int(text: str) -> int:
    """argparse type for flags that must be strictly positive."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not an integer: {text!r}")
    if value <= 0:
        raise argparse.ArgumentTypeError("must be a positive integer")
    return value


def _hedge_spec(text: str):
    """argparse type for --hedge-after: seconds, or the literal 'p95'."""
    if text == "p95":
        return text
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected seconds or 'p95', got {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError("hedge delay must be >= 0")
    return value


def _resolve(key: str):
    label = _MODEL_KEYS.get(key)
    if label is None:
        raise SystemExit(
            f"unknown model {key!r}; choose from: {', '.join(_MODEL_KEYS)}"
        )
    return label, all_paper_models()[label]


def _cmd_list(_args: argparse.Namespace) -> int:
    models = all_paper_models()
    for key, label in _MODEL_KEYS.items():
        model = models[label]
        ids = ", ".join(f"#{i}" for i in model.bugtraq_ids) or "n/a"
        print(f"{key:<10} {label:<45} Bugtraq {ids:<14} "
              f"{model.pfsm_count} pFSMs")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    db = BugtraqDatabase.synthetic(total=args.total)
    print(f"Figure 1 — breakdown of {len(db)} reports")
    for row in figure1_breakdown(db):
        print(f"  {row}")
    count, share = studied_family_share(db)
    print(f"\nstudied family: {count} reports ({share:.1%}); paper: 22%")
    remote_count, remote_frac = remote_share(db)
    print(f"remotely exploitable: {remote_count} reports ({remote_frac:.1%})")
    return 0


def _cmd_table1(_args: argparse.Namespace) -> int:
    for row in table1_ambiguity():
        print(f"#{row.bugtraq_id}: {row.description}")
        print(f"    anchor: {row.elementary_activity.value}")
        print(f"    category: {row.anchored_category.value}")
    return 0


def _cmd_model(args: argparse.Namespace) -> int:
    _label, model = _resolve(args.name)
    if args.dot:
        print(to_dot(model))
    elif args.json:
        print(model_to_json(model))
    else:
        print(render_model(model))
    return 0


def _trace_export(args: argparse.Namespace) -> int:
    """``repro trace export OUT.json --input EVENTS.jsonl``."""
    from .obs.trace import chrome_payload, load_trace_events

    if not args.output:
        raise SystemExit("trace export: missing output path "
                         "(repro trace export OUT.json --input FILE)")
    if not args.input:
        raise SystemExit("trace export: --input FILE is required "
                         "(a --trace-file telemetry JSONL)")
    try:
        spans, skipped = load_trace_events(args.input)
    except OSError as exc:
        raise SystemExit(f"trace export: cannot read {args.input}: {exc}")
    payload = chrome_payload(spans)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=None, separators=(",", ":"))
        handle.write("\n")
    print(f"wrote {len(payload['traceEvents'])} trace events to "
          f"{args.output} ({skipped} non-span lines skipped)")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.name == "export":
        return _trace_export(args)
    label, model = _resolve(args.name)
    inputs = all_benign_inputs() if args.benign else all_exploit_inputs()
    result = model.run(inputs[label])
    if args.json:
        from .core import result_to_dict

        print(json.dumps(result_to_dict(result), indent=2, default=str))
    else:
        print(result.trace.to_text())
        verdict = "COMPROMISED" if result.compromised and \
            result.hidden_path_count else "safe"
        print(f"\nverdict: {verdict} "
              f"({result.hidden_path_count} hidden transitions)")
    return 0


def _cmd_foil(args: argparse.Namespace) -> int:
    label, model = _resolve(args.name)
    exploit = all_exploit_inputs()[label]
    points = minimal_foil_points(model, exploit)
    if not points:
        print("input does not compromise the model; nothing to foil")
        return 0
    print(f"single-activity fixes that foil the exploit of {label}:")
    for point in points:
        print(f"  - {point}")
    return 0


def _cmd_statespace(args: argparse.Namespace) -> int:
    label, model = _resolve(args.name)
    domains = all_pfsm_domains()[label]
    space = build_state_space(model, domains)
    if args.dot:
        print(space.to_dot())
        return 0
    print(f"state space of {label}: {space.node_count} nodes, "
          f"{space.edge_count} edges, {len(space.hidden_edges())} hidden")
    print(f"compromise reachable via hidden paths: "
          f"{space.compromise_reachable()}")
    print(f"benign completion possible: {space.benign_path_exists()}")
    paths = space.exploit_paths(limit=10)
    print(f"distinct exploit paths (≤10 shown): {len(paths)}")
    cut = space.cut_set()
    print("cut set (checks whose installation disconnects the exploit):")
    for edge in cut:
        operation, pfsm = space.edge_owner(edge)
        print(f"  - {pfsm} in {operation!r}")
    return 0


def _memo_resolved_tasks(models: dict, domains: dict, limit: int) -> set:
    """Task identities already resolved by the dist fingerprint memo
    (probed *before* the sweep runs — these tasks will not execute any
    scan, so the strategy table tags them ``memo`` instead of reporting
    a strategy that never ran)."""
    from .core import dist

    resolved = set()
    for label, model in models.items():
        model_domains = domains.get(label, {})
        for operation, pfsm in model.all_pfsms():
            domain = model_domains.get(pfsm.name)
            if domain is None:
                continue
            try:
                key = dist.task_key(
                    model, (model.name, operation.name, pfsm, domain,
                            limit))
                if key is not None and dist.memo_lookup(key)[0]:
                    resolved.add((model.name, operation.name, pfsm.name))
            except Exception:
                continue
    return resolved


def _plan_rows(models: dict, domains: dict, limit: int,
               cache_available: bool, memo_resolved: set = frozenset()) -> list:
    """Per-task planner decisions (``repro sweep --explain`` / the
    ``plans`` block of ``--json``).  Tasks in ``memo_resolved`` get a
    ``memo`` strategy row — they were served whole from the dist
    fingerprint memo and never scanned."""
    from .core import plan as _plan

    rows = []
    for label, model in models.items():
        model_domains = domains.get(label, {})
        for operation, pfsm in model.all_pfsms():
            domain = model_domains.get(pfsm.name)
            if domain is None:
                continue
            if (model.name, operation.name, pfsm.name) in memo_resolved:
                rows.append({
                    "model": model.name, "operation": operation.name,
                    "pfsm": pfsm.name, "strategy": "memo",
                    "est_cost": 0.0, "objects": 0, "reason":
                    "resolved from the dist fingerprint memo "
                    "(no scan executed)", "tag": "memo",
                })
                continue
            try:
                info = _plan.describe_plan(
                    pfsm, domain, limit=limit,
                    cache_available=cache_available)
            except Exception:
                continue
            rows.append({"model": model.name, "operation": operation.name,
                         "pfsm": pfsm.name, **info})
    return rows


def _faults_block() -> Optional[Dict[str, object]]:
    """The ambient fault plan's injection counts (for --json payloads),
    or ``None`` when injection is off."""
    from . import faults

    return faults.snapshot()


def _cmd_sweep(args: argparse.Namespace) -> int:
    from . import obs
    from .core import NO_CACHE, PredicateCache, sweep_models
    from .core import columnar as _columnar
    from .core import plan as _plan

    models = all_paper_models()
    domains = all_pfsm_domains()
    # A per-invocation cache so the reported stats cover exactly this
    # sweep (the process-wide shared cache would fold in prior history).
    cache = (None if args.no_cache
             else PredicateCache(scan_window=args.scan_window))
    # Counters are recorded even without --profile so the strategy
    # breakdown below covers exactly this sweep (delta, not absolute).
    registry = obs.get_registry()
    owned_registry = not registry.enabled
    if owned_registry:
        registry.enable()  # counters only; no sink attached
    before = registry.counters()
    if args.no_plan:
        _plan.set_enabled(False)
    if args.no_columnar:
        _columnar.set_enabled(False)
    # Probed before the sweep: these tasks resolve whole from the dist
    # fingerprint memo and never reach a scan strategy.
    memo_resolved = (set() if args.no_plan else
                     _memo_resolved_tasks(models, domains, args.limit))
    coordinator = None
    cluster_snapshot = None
    if args.backend == "cluster":
        from . import cluster as _cluster
        from .cluster.protocol import parse_address

        if not args.listen:
            raise SystemExit(
                "--backend cluster requires --listen HOST:PORT (the "
                "coordinator address workers connect to)")
        try:
            listen_host, listen_port = parse_address(args.listen,
                                                     flag="--listen")
        except ValueError as exc:
            raise SystemExit(str(exc))
        coordinator = _cluster.ClusterCoordinator(
            listen_host, listen_port, lease_timeout=args.lease_timeout,
            journal=args.journal)
        coordinator.start()
        # Operational chatter goes to stderr under --json so the JSON
        # document on stdout stays parseable.
        announce = sys.stderr if args.json else sys.stdout
        print(f"cluster coordinator listening on "
              f"{coordinator.address[0]}:{coordinator.port} "
              f"(lease timeout {args.lease_timeout:.1f}s)",
              file=announce, flush=True)
        if args.wait_workers:
            if not coordinator.wait_for_workers(
                    args.wait_workers, timeout=args.wait_timeout):
                coordinator.close()
                raise SystemExit(
                    f"timed out after {args.wait_timeout:.0f}s waiting "
                    f"for {args.wait_workers} worker(s) on "
                    f"{coordinator.address[0]}:{coordinator.port}")
            print(f"{coordinator.worker_count()} worker(s) joined",
                  file=announce, flush=True)
        _cluster.set_coordinator(coordinator)
    try:
        sweeps = sweep_models(
            models,
            domains,
            limit=args.limit,
            workers=args.workers,
            cache=NO_CACHE if args.no_cache else cache,
            mode=args.backend,
            resume_from=args.resume_from,
        )
        plans = ([] if args.no_plan else
                 _plan_rows(models, domains, args.limit, not args.no_cache,
                            memo_resolved))
    finally:
        if coordinator is not None:
            from . import cluster as _cluster

            cluster_snapshot = coordinator.snapshot()
            _cluster.set_coordinator(None)
            coordinator.close()
        if args.no_plan:
            _plan.set_enabled(True)
        if args.no_columnar:
            _columnar.set_enabled(True)
        after = registry.counters()
        if owned_registry:
            registry.disable()
            if not before:
                registry.reset()  # leave no trace of the counting run
    delta = {key: after.get(key, 0) - before.get(key, 0)
             for key in set(after) | set(before)}
    scan_stats = {name: delta.get(f"sweep.scans.{name}", 0)
                  for name in ("fastpath", "columnar", "compiled",
                               "cached", "plain")}
    scan_stats["memo"] = delta.get("dist.memo.hits", 0)
    plan_stats = {
        "enabled": not args.no_plan,
        "compiles": delta.get("plan.compiles", 0),
        "cache_hits": delta.get("plan.cache.hits", 0),
        "cache_misses": delta.get("plan.cache.misses", 0),
        "cse_shared": delta.get("plan.cse.shared", 0),
        "cse_hits": delta.get("plan.cse.hits", 0),
        "cse_misses": delta.get("plan.cse.misses", 0),
    }
    cache_stats = cache.stats() if cache is not None else None
    total = sum(len(sweep.findings) for sweep in sweeps)
    cluster_block = None
    if cluster_snapshot is not None:
        counters = cluster_snapshot["counters"]
        cluster_block = {
            "listen": args.listen,
            "workers_joined": counters.get("workers.joined", 0),
            "workers_lost": counters.get("workers.lost", 0),
            "chunks_claimed": counters.get("chunks.claimed", 0),
            "chunks_completed": counters.get("chunks.completed", 0),
            "chunks_reclaimed": counters.get("chunks.reclaimed", 0),
            "chunks_failed": counters.get("chunks.failed", 0),
            "chunks_inline": counters.get("chunks.inline", 0),
            "chunks_resumed": counters.get("journal.resumed", 0),
            "journal_appends": counters.get("journal.appends", 0),
            "bytes_shipped": counters.get("bytes.shipped", 0),
            "bytes_received": counters.get("bytes.received", 0),
        }
    # --fail-on-witness: CI gates on "no hidden paths" via the exit code.
    exit_code = 1 if args.fail_on_witness and total else 0
    if args.json:
        payload = {
            "models": [
                {
                    "model": sweep.model_name,
                    "vulnerable": sweep.vulnerable,
                    "findings": [
                        {
                            "operation": f.operation_name,
                            "pfsm": f.pfsm_name,
                            "activity": f.activity,
                            "witnesses": list(f.witnesses),
                        }
                        for f in sweep.findings
                    ],
                }
                for sweep in sweeps
            ],
            "cache": cache_stats,
            "scans": scan_stats,
            "plan": plan_stats,
            "plans": plans,
            "cluster": cluster_block,
            "faults": _faults_block(),
            "settings": {
                "scan_window": args.scan_window,
                "columnar": not args.no_columnar,
                "columnar_backend": ("numpy" if _columnar.using_numpy()
                                     else "stdlib"),
                "backend": args.backend,
                "workers": args.workers,
                "limit": args.limit,
                "cache": not args.no_cache,
                "plan": not args.no_plan,
            },
            "total_findings": total,
        }
        print(json.dumps(payload, indent=2, default=str))
        return exit_code
    if args.explain and plans:
        width = max(len(f"{r['model']}/{r['operation']}/{r['pfsm']}")
                    for r in plans)
        print("-- plans --")
        print(f"{'task':<{width}}  {'strategy':<9} {'est_cost':>10}  "
              f"reason")
        for row in plans:
            name = f"{row['model']}/{row['operation']}/{row['pfsm']}"
            print(f"{name:<{width}}  {row['strategy']:<9} "
                  f"{row['est_cost']:>10.1f}  {row['reason']}")
        cse_nodes = sum(row.get("cse_nodes", 0) for row in plans)
        print(f"plan cache: {plan_stats['cache_hits']} hits, "
              f"{plan_stats['compiles']} compiles; "
              f"{plan_stats['cse_shared']} subtrees promoted to CSE, "
              f"{cse_nodes} CSE nodes across plans\n")
    for sweep in sweeps:
        verdict = "VULNERABLE" if sweep.vulnerable else "clean"
        print(f"{sweep.model_name}: {verdict} "
              f"({len(sweep.findings)} hidden-path pFSMs)")
        for finding in sweep.findings:
            sample = finding.witnesses[0] if finding.witnesses else None
            print(f"  - {finding.operation_name}/{finding.pfsm_name} "
                  f"({finding.activity}): e.g. {sample!r}")
    print(f"\n{total} hidden-path findings across {len(sweeps)} models "
          f"(workers={args.workers or 1}, backend={args.backend}, "
          f"cache={'off' if args.no_cache else 'on'})")
    if cache_stats is not None:
        print(f"cache: {cache_stats['hits']} hits, "
              f"{cache_stats['misses']} misses, "
              f"{cache_stats['evictions']} evictions "
              f"(hit rate {cache_stats['hit_rate']:.1%})")
    print(f"scans: {scan_stats['fastpath']} interval, "
          f"{scan_stats['columnar']} columnar, "
          f"{scan_stats['compiled']} compiled, "
          f"{scan_stats['cached']} cached, {scan_stats['plain']} plain"
          + (f", {scan_stats['memo']} memo" if scan_stats["memo"] else ""))
    if cluster_block is not None:
        print(f"cluster: {cluster_block['workers_joined']} workers joined "
              f"({cluster_block['workers_lost']} lost), "
              f"{cluster_block['chunks_completed']} chunks completed "
              f"({cluster_block['chunks_reclaimed']} reclaimed, "
              f"{cluster_block['chunks_inline']} inline), "
              f"{cluster_block['bytes_shipped']} bytes shipped")
    if exit_code:
        print("failing: hidden-path witnesses found (--fail-on-witness)")
    return exit_code


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .serve import AnalysisServer, ServeConfig

    buckets = None
    if args.latency_buckets:
        try:
            buckets = tuple(sorted(float(part) for part in
                                   args.latency_buckets.split(",") if part))
        except ValueError:
            raise SystemExit("--latency-buckets expects comma-separated "
                             "floats, e.g. 0.005,0.05,0.5,5")
    config = ServeConfig(
        host=args.host,
        port=args.port,
        max_depth=args.max_depth,
        batch_window=args.batch_window,
        max_batch=args.max_batch,
        workers=args.workers,
        backend=args.backend,
        cluster_listen=args.cluster_listen,
        store_path=args.store,
        # --trace-file alone implies tracing: the JsonlSink attached by
        # _run_with_observability captures the spans, and the collector
        # must exist for traceparent continuation / per-request
        # timelines to work.
        trace=args.trace or bool(args.trace_file),
        trace_sample=args.trace_sample,
        trace_slow_ms=args.trace_slow_ms,
        latency_buckets=buckets,
    )
    server = AnalysisServer(config)

    async def run() -> None:
        await server.start()
        print(f"repro serve listening on {server.host}:{server.port} "
              f"(backend={config.backend}, workers={config.workers}, "
              f"depth={config.max_depth}, "
              f"store={config.store_path or 'none'}, "
              f"trace={'on' if config.trace else 'off'})", flush=True)
        if server.coordinator is not None:
            chost, cport = server.coordinator.address
            print(f"cluster coordinator listening on {chost}:{cport} "
                  f"(join with `repro worker --connect {chost}:{cport}`)",
                  flush=True)
        server.install_signal_handlers()
        await server.serve_until_stopped()

    asyncio.run(run())
    served = server.stats.counter("requests.query")
    shed = server.stats.counter("shed.overload") + \
        server.stats.counter("shed.deadline") + \
        server.stats.counter("shed.draining")
    print(f"drained cleanly: {served} queries served, {shed} shed, "
          f"{server.stats.counter('coalesced')} coalesced, "
          f"{server.stats.counter('requests.cached')} cache-answered")
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    import signal

    from .cluster import ClusterWorker, WorkerConnectError
    from .cluster.protocol import parse_address

    try:
        host, port = parse_address(args.connect, flag="--connect")
    except ValueError as exc:
        raise SystemExit(str(exc))
    preload = [module for spec in args.preload
               for module in spec.split(",") if module]
    worker = ClusterWorker(
        host, port, slots=args.workers, inline=args.inline,
        connect_timeout=args.connect_timeout,
        poll_interval=args.poll_ms / 1000.0, preload=preload,
        chunk_timeout=args.chunk_timeout)
    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, lambda _s, _f: worker.stop(timeout=0.0))
    print(f"repro worker {worker.id} connecting to {host}:{port} "
          f"(slots={args.workers}, "
          f"{'inline' if args.inline else 'local pool'})", flush=True)
    try:
        code = worker.run()
    except WorkerConnectError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(f"worker {worker.id} done: {worker.chunks_done} chunk(s) "
          f"executed", flush=True)
    return code


def _cmd_query(args: argparse.Namespace) -> int:
    from .serve import SHED_STATUSES, STATUS_OK
    from .serve.client import ServeClient

    keys = list(_MODEL_KEYS) if args.models == ["all"] else args.models
    saw_shed = saw_error = False
    try:
        client = ServeClient(args.host, args.port, timeout=args.timeout,
                             connect_timeout=args.connect_timeout,
                             retries=args.retries,
                             hedge_after=args.hedge_after)
    except (OSError, ConnectionError) as exc:
        if args.connect_timeout is not None:
            print(f"cannot connect to repro serve at "
                  f"{args.host}:{args.port} within "
                  f"{args.connect_timeout:.1f}s: {exc}", file=sys.stderr)
            return 2
        print(f"cannot reach repro serve at {args.host}:{args.port}: "
              f"{exc}", file=sys.stderr)
        return 1
    try:
        with client:
            if args.metrics:
                print(json.dumps(client.metrics(), indent=2))
                return 0
            for key in keys:
                response = client.query(key, limit=args.limit,
                                        deadline_ms=args.deadline_ms,
                                        trace=args.trace,
                                        traceparent=args.traceparent)
                status = response.get("status")
                saw_shed |= status in SHED_STATUSES
                saw_error |= status not in SHED_STATUSES and \
                    status != STATUS_OK
                if args.json:
                    print(json.dumps(response))
                    continue
                if status != STATUS_OK:
                    print(f"{key}: {status} "
                          f"({response.get('error', 'no detail')})")
                    continue
                verdict = ("VULNERABLE" if response["vulnerable"]
                           else "clean")
                origin = ("cached" if response.get("cached")
                          else "coalesced" if response.get("coalesced")
                          else "computed")
                print(f"{response['model_name']}: {verdict} "
                      f"({len(response['findings'])} hidden-path pFSMs, "
                      f"{origin}, {response.get('elapsed_ms', '?')} ms)")
                for finding in response["findings"]:
                    sample = (finding["witnesses"][0]
                              if finding["witnesses"] else None)
                    print(f"  - {finding['operation']}/{finding['pfsm']} "
                          f"({finding['activity']}): e.g. {sample!r}")
                if args.trace and response.get("trace"):
                    print(f"  trace {response.get('trace_id', '?')}:")
                    for row in response["trace"]:
                        remote = " [worker]" if row.get("remote") else ""
                        print(f"    {row['offset_ms']:>9.3f} ms  "
                              f"{row['name']:<20} "
                              f"{row['duration_ms']:>9.3f} ms{remote}")
    except (OSError, ConnectionError) as exc:
        print(f"cannot reach repro serve at {args.host}:{args.port}: "
              f"{exc}", file=sys.stderr)
        return 1
    resilience = client.resilience_stats()
    if resilience["request_retries"] or resilience["hedges"]:
        print(f"client resilience: {resilience['request_retries']} "
              f"retried request(s), {resilience['hedges']} hedge(s) "
              f"({resilience['hedge_wins']} won)", file=sys.stderr)
    if saw_error:
        return 1
    return 2 if saw_shed else 0


def _cmd_table2(_args: argparse.Namespace) -> int:
    from .models import all_paper_models as paper_seven

    for cell in table2_grid(paper_seven()):
        print(f"{cell.vulnerability:<45} {cell.pfsm_name:<6} "
              f"{cell.check_type.value}")
    return 0


def _cmd_discover(_args: argparse.Namespace) -> int:
    from .apps import NullHttpd, NullHttpdVariant, RECV_CHUNK
    from .core import DiscoveryEngine, Domain, Predicate

    spec_len = Predicate(lambda n: n >= 0, "contentLen >= 0")
    spec_fit = Predicate(
        lambda r: r["input_len"] <= r["content_len"] + 1024,
        "length(input) <= size(PostData)",
    )

    def probe_len(content_len: int) -> bool:
        app = NullHttpd(NullHttpdVariant.V0_5_1)
        return app.handle_post(content_len,
                               b"x" * max(content_len, 0)).accepted

    def probe_fit(request: Dict[str, int]) -> bool:
        app = NullHttpd(NullHttpdVariant.V0_5_1)
        outcome = app.handle_post(request["content_len"],
                                  b"x" * request["input_len"])
        return outcome.accepted and \
            outcome.bytes_copied == request["input_len"]

    engine = DiscoveryEngine(known_vulnerable=["pFSM1"])
    findings = engine.sweep_probed(
        "Read postdata from socket to PostData",
        [("pFSM1", "validate contentLen", spec_len, probe_len),
         ("pFSM2", "terminate the copy at the buffer size", spec_fit,
          probe_fit)],
        {"pFSM1": Domain.of(-800, -1, 0, 100, 4096),
         "pFSM2": Domain.records(
             content_len=Domain.of(0, 100, 500),
             input_len=Domain.of(0, 100, 1024, 1500, 2 * RECV_CHUNK + 200))},
    )
    print("discovery sweep over NULL HTTPD 0.5.1:")
    for finding in findings:
        print(f"  {finding}")
    if not findings:
        print("  (no findings)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="pFSM vulnerability modeling (Chen et al., DSN 2003)",
    )
    from . import __version__

    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")

    # Telemetry flags shared by every subcommand (as a parent parser, so
    # they are accepted after the subcommand: ``repro sweep --profile``).
    obs_flags = argparse.ArgumentParser(add_help=False)
    obs_flags.add_argument(
        "--profile", action="store_true",
        help="record telemetry and print a span/counter summary",
    )
    obs_flags.add_argument(
        "--profile-sort", choices=("total", "self", "count"),
        default="total",
        help="order the --profile span table by total time, self time "
             "(total minus child spans), or call count",
    )
    obs_flags.add_argument(
        "--trace-file", metavar="PATH", default=None,
        help="write telemetry events to PATH as JSON lines",
    )
    obs_flags.add_argument(
        "--faults", metavar="SPEC", default=None,
        help="deterministic fault injection (repro.faults), e.g. "
             "'seed=7;cluster.send.drop:0.01;worker.chunk.hang:1@max=1"
             "@ms=500'; also read from the REPRO_FAULTS environment "
             "variable and exported to spawned workers",
    )

    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the prebuilt paper models",
                   parents=[obs_flags]).set_defaults(fn=_cmd_list)

    stats = sub.add_parser("stats", help="Figure 1 statistics",
                           parents=[obs_flags])
    stats.add_argument("--total", type=int, default=5925)
    stats.set_defaults(fn=_cmd_stats)

    sub.add_parser("table1", help="Table 1 category ambiguity",
                   parents=[obs_flags]).set_defaults(fn=_cmd_table1)

    model = sub.add_parser("model", help="render a model",
                           parents=[obs_flags])
    model.add_argument("name")
    model.add_argument("--dot", action="store_true")
    model.add_argument("--json", action="store_true")
    model.set_defaults(fn=_cmd_model)

    trace = sub.add_parser(
        "trace",
        help="run a model and print the trace; 'trace export OUT.json "
             "--input EVENTS.jsonl' converts telemetry to Chrome "
             "trace-event JSON",
        parents=[obs_flags])
    trace.add_argument("name",
                       help="model key, or 'export' to convert a "
                            "telemetry JSONL file")
    trace.add_argument("output", nargs="?", default=None,
                       help="(export only) Chrome trace-event JSON "
                            "output path")
    trace.add_argument("--input", metavar="PATH", default=None,
                       help="(export only) telemetry JSONL to convert "
                            "(a --trace-file)")
    trace.add_argument("--benign", action="store_true")
    trace.add_argument("--json", action="store_true")
    trace.set_defaults(fn=_cmd_trace)

    foil = sub.add_parser("foil", help="single-activity foil points",
                          parents=[obs_flags])
    foil.add_argument("name")
    foil.set_defaults(fn=_cmd_foil)

    space = sub.add_parser("statespace", help="unrolled graph analysis",
                           parents=[obs_flags])
    space.add_argument("name")
    space.add_argument("--dot", action="store_true")
    space.set_defaults(fn=_cmd_statespace)

    sub.add_parser("table2", help="the generic pFSM type grid",
                   parents=[obs_flags]).set_defaults(fn=_cmd_table2)

    sub.add_parser("discover", help="re-run the §5.1 sweep (#6255)",
                   parents=[obs_flags]).set_defaults(fn=_cmd_discover)

    sweep = sub.add_parser(
        "sweep", help="hidden-path sweep across all bundled models",
        parents=[obs_flags],
    )
    sweep.add_argument("--backend", choices=("thread", "process", "queue",
                                             "cluster", "auto"),
                       default="thread",
                       help="execution backend for the sweep tasks "
                            "(process/queue use the distributed scheduler "
                            "in repro.core.dist; cluster dispatches chunks "
                            "to repro worker agents over TCP — see "
                            "--listen)")
    sweep.add_argument("--listen", metavar="HOST:PORT", default=None,
                       help="(cluster backend) start the coordinator on "
                            "this address; workers join with "
                            "`repro worker --connect HOST:PORT`")
    sweep.add_argument("--wait-workers", type=_positive_int, default=None,
                       metavar="N",
                       help="(cluster backend) wait for N workers to "
                            "join before sweeping (without it the sweep "
                            "starts immediately and runs inline until "
                            "workers arrive)")
    sweep.add_argument("--wait-timeout", type=float, default=30.0,
                       metavar="SECONDS",
                       help="how long --wait-workers waits before "
                            "giving up (default 30)")
    sweep.add_argument("--lease-timeout", type=float, default=10.0,
                       metavar="SECONDS",
                       help="(cluster backend) seconds a claimed chunk "
                            "may go un-renewed before it is reclaimed "
                            "from its worker (default 10)")
    sweep.add_argument("--resume-from", metavar="PATH", default=None,
                       help="JSONL result store; previously computed "
                            "(model fingerprint, predicate-spec) results "
                            "are reused and new ones appended")
    sweep.add_argument("--journal", metavar="PATH", default=None,
                       help="(cluster backend) crash-safe sweep journal: "
                            "completed chunks are appended as they "
                            "finish, and a restarted coordinator with "
                            "the same journal re-executes only the "
                            "chunks that were in flight")
    sweep.add_argument("--workers", type=int, default=None,
                       help="fan per-pFSM scans across N workers")
    sweep.add_argument("--no-cache", action="store_true",
                       help="disable the shared predicate memo cache")
    sweep.add_argument("--limit", type=int, default=5,
                       help="max witnesses recorded per pFSM")
    sweep.add_argument("--explain", action="store_true",
                       help="print each task's chosen scan strategy, "
                            "estimated cost, and CSE reuse (the "
                            "planner's decisions; also in --json as "
                            "the 'plans' block)")
    sweep.add_argument("--no-plan", action="store_true",
                       help="disable the predicate compiler / planner "
                            "for this sweep (scalar strategies only)")
    sweep.add_argument("--no-columnar", action="store_true",
                       help="disable the columnar domain engine "
                            "(struct-of-arrays kernels and shared-memory "
                            "domain transfer; see repro.core.columnar)")
    sweep.add_argument("--scan-window", type=_positive_int, default=512,
                       metavar="N",
                       help="objects per bulk predicate-cache round-trip "
                            "in compiled scans (default 512)")
    sweep.add_argument("--fail-on-witness", action="store_true",
                       help="exit nonzero if any hidden-path witness is "
                            "found (CI gate)")
    sweep.add_argument("--json", action="store_true")
    sweep.set_defaults(fn=_cmd_sweep)

    serve = sub.add_parser(
        "serve", help="run the long-lived analysis service (repro.serve)",
        parents=[obs_flags],
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7337,
                       help="TCP port (0 picks an ephemeral port, "
                            "announced on stdout)")
    serve.add_argument("--max-depth", type=int, default=64,
                       help="admission queue bound; overflow is answered "
                            "with status 'overloaded'")
    serve.add_argument("--batch-window", type=float, default=0.01,
                       metavar="SECONDS",
                       help="how long the micro-batcher waits to coalesce "
                            "and pack requests")
    serve.add_argument("--max-batch", type=int, default=16,
                       help="max requests folded into one engine dispatch")
    serve.add_argument("--workers", type=int, default=2,
                       help="engine workers per dispatch")
    serve.add_argument("--backend", choices=("thread", "process", "queue",
                                             "cluster"),
                       default="thread",
                       help="engine backend (process/queue keep a warm "
                            "repro.core.dist pool; cluster fans "
                            "micro-batches out to repro worker agents — "
                            "see --cluster-listen)")
    serve.add_argument("--cluster-listen", metavar="HOST:PORT",
                       default=None,
                       help="(cluster backend) coordinator listen "
                            "address for worker agents (default: the "
                            "serve host on an ephemeral port, announced "
                            "on stdout)")
    serve.add_argument("--store", metavar="PATH", default=None,
                       help="JSONL result store for the cold cache tier "
                            "(compatible with repro sweep --resume-from)")
    serve.add_argument("--trace", action="store_true",
                       help="end-to-end request tracing: mint/accept a "
                            "W3C traceparent per request and reassemble "
                            "admission/batch/chunk/worker spans into one "
                            "trace (also implied by --trace-file)")
    serve.add_argument("--trace-sample", type=float, default=1.0,
                       metavar="FRACTION",
                       help="head-sampling rate for trace retention "
                            "(spans still export; 1.0 keeps every trace)")
    serve.add_argument("--trace-slow-ms", type=float, default=None,
                       metavar="MS",
                       help="tail-keep: always retain traces slower than "
                            "MS even when head sampling dropped them "
                            "(shed/error/witness-bearing traces are "
                            "always kept)")
    serve.add_argument("--latency-buckets", metavar="BOUNDS", default=None,
                       help="comma-separated histogram bucket bounds in "
                            "seconds for the /metrics stage histograms")
    serve.set_defaults(fn=_cmd_serve)

    query = sub.add_parser(
        "query", help="query a running repro serve instance",
        parents=[obs_flags],
    )
    query.add_argument("models", nargs="*", default=["all"],
                       help="model keys to query (default: all)")
    query.add_argument("--host", default="127.0.0.1")
    query.add_argument("--port", type=int, default=7337)
    query.add_argument("--limit", type=int, default=5,
                       help="max witnesses per pFSM")
    query.add_argument("--deadline-ms", type=float, default=None,
                       help="shed the request (status 'timeout') if it is "
                            "still queued after this many milliseconds")
    query.add_argument("--timeout", type=float, default=60.0,
                       help="client socket timeout in seconds")
    query.add_argument("--connect-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="total budget for connection establishment "
                            "(attempts retry with backoff inside it, so "
                            "a server that is still binding connects on "
                            "a later try); exits 2 with a clear message "
                            "once the budget is spent")
    query.add_argument("--retries", type=int, default=2, metavar="N",
                       help="retry idempotent requests up to N times on "
                            "connection errors, reconnecting between "
                            "attempts (default 2; 0 disables)")
    query.add_argument("--hedge-after", metavar="SECONDS|p95",
                       type=_hedge_spec, default=None,
                       help="send a duplicate of a slow query on a "
                            "second connection after this many seconds "
                            "('p95' derives the delay from observed "
                            "latencies); first response wins")
    query.add_argument("--metrics", action="store_true",
                       help="print the server metrics snapshot and exit")
    query.add_argument("--trace", action="store_true",
                       help="request the per-request stage timeline "
                            "(server must run with tracing enabled)")
    query.add_argument("--traceparent", metavar="HEADER", default=None,
                       help="join an existing W3C trace "
                            "(00-<32 hex>-<16 hex>-<2 hex>)")
    query.add_argument("--json", action="store_true")
    query.set_defaults(fn=_cmd_query)

    worker = sub.add_parser(
        "worker",
        help="run a cluster worker agent: claim sweep chunks from a "
             "coordinator (repro sweep --listen / repro serve --backend "
             "cluster) and execute them on a local warm pool",
        parents=[obs_flags],
    )
    worker.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="the coordinator to serve")
    worker.add_argument("--workers", type=_positive_int, default=2,
                        help="concurrent execution slots (and the width "
                             "of the local warm process pool)")
    worker.add_argument("--inline", action="store_true",
                        help="execute chunks in the agent process instead "
                             "of a local process pool (slower; no "
                             "subprocesses)")
    worker.add_argument("--connect-timeout", type=float, default=10.0,
                        metavar="SECONDS",
                        help="exit 2 if the coordinator cannot be reached "
                             "within SECONDS (also the reconnect patience "
                             "once connected; default 10)")
    worker.add_argument("--poll-ms", type=float, default=50.0,
                        metavar="MS",
                        help="idle claim-poll interval (default 50)")
    worker.add_argument("--chunk-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="hard per-chunk execution deadline: a chunk "
                             "still running after SECONDS has its "
                             "execution killed and is reported as failed "
                             "(the coordinator's bounded retries take "
                             "over); default: no deadline")
    worker.add_argument("--preload", action="append", metavar="MODULE",
                        default=[],
                        help="import MODULE before executing (registers "
                             "application named predicates; repeatable, "
                             "comma-separable)")
    worker.set_defaults(fn=_cmd_worker)

    return parser


def _run_with_observability(args: argparse.Namespace) -> int:
    """Execute a subcommand with the telemetry registry live, then
    report (``--profile``) and/or persist (``--trace-file``)."""
    from . import obs

    registry = obs.get_registry()
    sinks = []
    reporter = jsonl = None
    if args.profile:
        reporter = obs.ConsoleReporter()
        sinks.append(reporter)
    if args.trace_file:
        jsonl = obs.JsonlSink(args.trace_file)
        sinks.append(jsonl)
    registry.enable(*sinks)
    try:
        code = args.fn(args)
    finally:
        registry.disable()
        if jsonl is not None:
            jsonl.write_summary(registry)
            jsonl.close()
        if reporter is not None:
            reporter.report(registry,
                            sort=getattr(args, "profile_sort", "total"))
        registry.clear_sinks()
        registry.reset()
    return code


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    from . import faults

    spec = getattr(args, "faults", None) or os.environ.get(faults.ENV_VAR)
    if spec:
        try:
            faults.install(faults.parse_spec(spec))
        except faults.FaultSpecError as exc:
            print(f"invalid --faults spec: {exc}", file=sys.stderr)
            return 2
        # Spawned workers (repro worker, pool children via the CLI)
        # inherit the same plan through the environment.
        os.environ[faults.ENV_VAR] = spec
    if getattr(args, "profile", False) or getattr(args, "trace_file", None):
        return _run_with_observability(args)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
