"""Report serialization: dict/JSON round-trips for the Bugtraq schema.

Supports exporting a database (synthetic or curated) to a JSON corpus
file and loading it back — the storage format downstream analyses or
external tools would consume.  Round-trips are exact, including the
elementary-activity annotations.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable

from ..core.classification import ActivityKind, BugtraqCategory
from .database import BugtraqDatabase
from .schema import ActivityAnnotation, VulnerabilityReport

__all__ = [
    "report_to_dict",
    "report_from_dict",
    "database_to_json",
    "database_from_json",
    "dump_database",
    "load_database",
]

_CATEGORY_BY_VALUE = {category.value: category for category in BugtraqCategory}
_ACTIVITY_BY_VALUE = {activity.value: activity for activity in ActivityKind}


def report_to_dict(report: VulnerabilityReport) -> Dict[str, Any]:
    """Plain-dict form of one report."""
    return {
        "bugtraq_id": report.bugtraq_id,
        "title": report.title,
        "category": report.category.value,
        "vulnerability_class": report.vulnerability_class,
        "software": report.software,
        "version": report.version,
        "published": report.published,
        "remote": report.remote,
        "exploit_available": report.exploit_available,
        "activities": [
            {"activity": annotation.activity.value,
             "description": annotation.description}
            for annotation in report.activities
        ],
    }


def report_from_dict(data: Dict[str, Any]) -> VulnerabilityReport:
    """Rebuild a report from its dict form."""
    category = _CATEGORY_BY_VALUE.get(data["category"])
    if category is None:
        raise ValueError(f"unknown category {data['category']!r}")
    activities = []
    for annotation in data.get("activities", ()):
        activity = _ACTIVITY_BY_VALUE.get(annotation["activity"])
        if activity is None:
            raise ValueError(f"unknown activity {annotation['activity']!r}")
        activities.append(
            ActivityAnnotation(activity=activity,
                               description=annotation["description"])
        )
    return VulnerabilityReport(
        bugtraq_id=data.get("bugtraq_id"),
        title=data["title"],
        category=category,
        vulnerability_class=data["vulnerability_class"],
        software=data.get("software", ""),
        version=data.get("version", ""),
        published=data.get("published", ""),
        remote=bool(data.get("remote", False)),
        exploit_available=bool(data.get("exploit_available", False)),
        activities=tuple(activities),
    )


def database_to_json(db: Iterable[VulnerabilityReport], indent: int = 2) -> str:
    """JSON text of a whole database."""
    return json.dumps([report_to_dict(report) for report in db],
                      indent=indent, sort_keys=True)


def database_from_json(text: str) -> BugtraqDatabase:
    """Database from JSON text."""
    records = json.loads(text)
    return BugtraqDatabase(report_from_dict(record) for record in records)


def dump_database(db: Iterable[VulnerabilityReport], path: str) -> None:
    """Write a database to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(database_to_json(db))


def load_database(path: str) -> BugtraqDatabase:
    """Read a database from a JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        return database_from_json(handle.read())
