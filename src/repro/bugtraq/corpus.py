"""The curated corpus: every vulnerability the paper names, with its
real Bugtraq identity, assigned category, and elementary-activity
decomposition.

This is the data side of the paper's in-depth analysis (Section 3.2):
Table 1's three signed-integer-overflow reports that land in three
different categories, the buffer-overflow activity chain
(#6157 / #5960 / #4479), the format-string trio (#1387 / #2210 / #2264),
and the case studies of Sections 4-5.
"""

from __future__ import annotations

from typing import Dict, List

from ..core.classification import ActivityKind, BugtraqCategory
from .schema import ActivityAnnotation, VulnerabilityReport

__all__ = [
    "CORPUS",
    "corpus_report",
    "TABLE1_REPORTS",
    "BUFFER_OVERFLOW_CHAIN",
    "FORMAT_STRING_TRIO",
    "STUDIED_CLASSES",
]

#: The vulnerability classes the paper's FSM study covers; Section 1
#: states this family constitutes 22% of all Bugtraq vulnerabilities.
STUDIED_CLASSES = (
    "stack buffer overflow",
    "signed integer overflow",
    "heap overflow",
    "input validation",
    "format string",
)


def _report(
    bugtraq_id,
    title,
    category,
    vulnerability_class,
    software,
    activities,
    remote=False,
    version="",
    published="",
    exploit_available=False,
) -> VulnerabilityReport:
    return VulnerabilityReport(
        bugtraq_id=bugtraq_id,
        title=title,
        category=category,
        vulnerability_class=vulnerability_class,
        software=software,
        version=version,
        published=published,
        remote=remote,
        exploit_available=exploit_available,
        activities=tuple(
            ActivityAnnotation(kind, desc) for kind, desc in activities
        ),
    )


CORPUS: List[VulnerabilityReport] = [
    # ---- Table 1: the signed-integer-overflow ambiguity ------------------
    _report(
        3163,
        "Sendmail Debugging Function Signed Integer Overflow",
        BugtraqCategory.INPUT_VALIDATION,
        "signed integer overflow",
        "Sendmail",
        [
            (ActivityKind.GET_INPUT,
             "a negative input integer accepted as an array index"),
            (ActivityKind.USE_AS_INDEX, "write debug level i to tTvect[x]"),
            (ActivityKind.TRANSFER_CONTROL,
             "call setuid() through the corrupted GOT entry"),
        ],
        version="8.11.x",
        published="2001-08-17",
        exploit_available=True,
    ),
    _report(
        5493,
        "FreeBSD System Call Signed Integer Buffer Overflow",
        BugtraqCategory.BOUNDARY_CONDITION,
        "signed integer overflow",
        "FreeBSD",
        [
            (ActivityKind.GET_INPUT, "a negative value supplied for the argument"),
            (ActivityKind.USE_AS_INDEX,
             "use the integer as the index to an array, exceeding its boundary"),
        ],
        published="2002-08-12",
    ),
    _report(
        3958,
        "rsync Signed Array Index Remote Code Execution",
        BugtraqCategory.ACCESS_VALIDATION,
        "signed integer overflow",
        "rsync",
        [
            (ActivityKind.GET_INPUT, "a remotely supplied signed value"),
            (ActivityKind.USE_AS_INDEX, "used as an array index"),
            (ActivityKind.TRANSFER_CONTROL,
             "corruption of a function pointer or a return address"),
        ],
        remote=True,
        published="2002-01-14",
    ),
    # ---- The buffer-overflow activity chain (Observation 1) ---------------
    _report(
        6157,
        "Buffer overflow interpreted as an input validation error",
        BugtraqCategory.INPUT_VALIDATION,
        "stack buffer overflow",
        "(various)",
        [(ActivityKind.GET_INPUT, "get input string")],
    ),
    _report(
        5960,
        "GHTTPD Log() Function Buffer Overflow",
        BugtraqCategory.BOUNDARY_CONDITION,
        "stack buffer overflow",
        "GHTTPD",
        [
            (ActivityKind.COPY_TO_BUFFER, "copy the string to a 200-byte buffer"),
            (ActivityKind.TRANSFER_CONTROL,
             "return through the smashed return address"),
        ],
        remote=True,
        published="2002-10-28",
        exploit_available=True,
    ),
    _report(
        4479,
        "Buffer overflow interpreted as failure to handle exceptional conditions",
        BugtraqCategory.EXCEPTIONAL_CONDITIONS,
        "stack buffer overflow",
        "(various)",
        [(ActivityKind.HANDLE_ADJACENT_DATA,
          "handle data (e.g. return address) following the buffer")],
    ),
    # ---- The format-string trio -------------------------------------------
    _report(
        1387,
        "wu-ftpd Remote Format String Stack Overwrite",
        BugtraqCategory.INPUT_VALIDATION,
        "format string",
        "wu-ftpd",
        [(ActivityKind.GET_INPUT, "user input string containing format directives")],
        remote=True,
        published="2000-06-22",
        exploit_available=True,
    ),
    _report(
        2210,
        "splitvt Format String Vulnerability",
        BugtraqCategory.ACCESS_VALIDATION,
        "format string",
        "splitvt",
        [(ActivityKind.TRANSFER_CONTROL,
          "write through %n to a chosen location")],
        published="2001-01-23",
    ),
    _report(
        2264,
        "icecast print_client() Format String Vulnerability",
        BugtraqCategory.BOUNDARY_CONDITION,
        "format string",
        "icecast",
        [(ActivityKind.COPY_TO_BUFFER,
          "expand directives into a fixed-size buffer")],
        remote=True,
        published="2001-02-02",
    ),
    _report(
        1480,
        "Multiple Linux Vendor rpc.statd Remote Format String",
        BugtraqCategory.INPUT_VALIDATION,
        "format string",
        "rpc.statd",
        [
            (ActivityKind.GET_INPUT,
             "remotely supplied filename containing format directives"),
            (ActivityKind.TRANSFER_CONTROL,
             "return address rewritten via %n"),
        ],
        remote=True,
        published="2000-07-16",
        exploit_available=True,
    ),
    # ---- NULL HTTPD ----------------------------------------------------------
    _report(
        5774,
        "Null HTTPD Remote Heap Overflow",
        BugtraqCategory.BOUNDARY_CONDITION,
        "heap overflow",
        "Null HTTPD",
        [
            (ActivityKind.GET_INPUT, "negative Content-Length accepted"),
            (ActivityKind.COPY_TO_BUFFER,
             "copy oversized input into the undersized heap buffer"),
            (ActivityKind.TRANSFER_CONTROL,
             "unlink write corrupts the GOT entry of free()"),
        ],
        remote=True,
        version="0.5",
        published="2002-09-23",
        exploit_available=True,
    ),
    _report(
        6255,
        "Null HTTPD ReadPOSTData recv Termination Heap Overflow",
        BugtraqCategory.BOUNDARY_CONDITION,
        "heap overflow",
        "Null HTTPD",
        [
            (ActivityKind.COPY_TO_BUFFER,
             "|| instead of && lets the copy run past contentLen"),
            (ActivityKind.TRANSFER_CONTROL,
             "unlink write corrupts the GOT entry of free()"),
        ],
        remote=True,
        version="0.5.1",
        published="2002-11-21",
    ),
    # ---- IIS ---------------------------------------------------------------------
    _report(
        2708,
        "Microsoft IIS Superfluous Filename Decoding",
        BugtraqCategory.INPUT_VALIDATION,
        "input validation",
        "Microsoft IIS",
        [
            (ActivityKind.GET_INPUT, "percent-encoded CGI filepath"),
            (ActivityKind.ACCESS_OBJECT,
             "execute a program outside /wwwroot/scripts"),
        ],
        remote=True,
        published="2001-05-15",
        exploit_available=True,
    ),
    # ---- Cases without Bugtraq IDs in the paper -------------------------------------
    _report(
        None,
        "xterm Log File Race Condition",
        BugtraqCategory.RACE_CONDITION,
        "file race condition",
        "xterm",
        [
            (ActivityKind.ACCESS_OBJECT, "verify write permission on the log file"),
            (ActivityKind.CHECK_THEN_USE,
             "symlink swapped in between check and open"),
        ],
    ),
    _report(
        None,
        "Solaris Rwall Arbitrary File Corruption (CERT CA-1994-06)",
        BugtraqCategory.ACCESS_VALIDATION,
        "input validation",
        "rwalld",
        [
            (ActivityKind.ACCESS_OBJECT, "regular user edits /etc/utmp"),
            (ActivityKind.GET_INPUT, "daemon reads entries from /etc/utmp"),
        ],
    ),
]

#: Table 1's three rows in order.
TABLE1_REPORTS = (3163, 5493, 3958)

#: The buffer-overflow activity chain of Observation 1.
BUFFER_OVERFLOW_CHAIN = (6157, 5960, 4479)

#: The format-string classification spread of Observation 1.
FORMAT_STRING_TRIO = (1387, 2210, 2264)

_BY_ID: Dict[int, VulnerabilityReport] = {
    report.bugtraq_id: report
    for report in CORPUS
    if report.bugtraq_id is not None
}


def corpus_report(bugtraq_id: int) -> VulnerabilityReport:
    """Look up a curated report by Bugtraq ID."""
    return _BY_ID[bugtraq_id]
