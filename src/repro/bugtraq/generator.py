"""Synthetic Bugtraq database generator.

The paper's statistical base is the Bugtraq list as of 2002-11-30: 5925
reports across 12 categories, with the Figure 1 breakdown.  The live
database is not redistributable, so this generator synthesizes a
deterministic corpus whose *category marginals match Figure 1 exactly*
(to the displayed integer percentages) and whose finer vulnerability
classes reproduce the Section 1 claim that the studied family — stack
buffer overflow, signed integer overflow, heap overflow, input
validation, format string — constitutes 22% of all reports.

Everything is seeded: the same call always produces the same database,
so benchmark output is stable.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from ..core.classification import BugtraqCategory
from .schema import VulnerabilityReport

__all__ = [
    "TOTAL_REPORTS",
    "FIGURE1_COUNTS",
    "FIGURE1_PERCENTAGES",
    "STUDIED_CLASS_QUOTAS",
    "generate_reports",
]

#: Database size as of the paper's snapshot (2002-11-30).
TOTAL_REPORTS = 5925

#: Category counts chosen so that count/5925 rounds to Figure 1's
#: displayed percentage for every category and the counts sum to 5925.
FIGURE1_COUNTS: Dict[BugtraqCategory, int] = {
    BugtraqCategory.INPUT_VALIDATION: 1363,  # 23%
    BugtraqCategory.BOUNDARY_CONDITION: 1244,  # 21%
    BugtraqCategory.DESIGN: 1055,  # 18%
    BugtraqCategory.EXCEPTIONAL_CONDITIONS: 644,  # 11%
    BugtraqCategory.ACCESS_VALIDATION: 593,  # 10%
    BugtraqCategory.RACE_CONDITION: 356,  # 6%
    BugtraqCategory.CONFIGURATION: 296,  # 5%
    BugtraqCategory.ORIGIN_VALIDATION: 178,  # 3%
    BugtraqCategory.ATOMICITY: 119,  # 2%
    BugtraqCategory.ENVIRONMENT: 59,  # 1%
    BugtraqCategory.SERIALIZATION: 10,  # 0%
    BugtraqCategory.UNKNOWN: 8,  # 0%
}

#: The percentages as printed in Figure 1.
FIGURE1_PERCENTAGES: Dict[BugtraqCategory, int] = {
    BugtraqCategory.INPUT_VALIDATION: 23,
    BugtraqCategory.BOUNDARY_CONDITION: 21,
    BugtraqCategory.DESIGN: 18,
    BugtraqCategory.EXCEPTIONAL_CONDITIONS: 11,
    BugtraqCategory.ACCESS_VALIDATION: 10,
    BugtraqCategory.RACE_CONDITION: 6,
    BugtraqCategory.CONFIGURATION: 5,
    BugtraqCategory.ORIGIN_VALIDATION: 3,
    BugtraqCategory.ATOMICITY: 2,
    BugtraqCategory.ENVIRONMENT: 1,
    BugtraqCategory.SERIALIZATION: 0,
    BugtraqCategory.UNKNOWN: 0,
}

#: Counts for the studied vulnerability classes, totalling 1304 of 5925
#: = 22.0% (the Section 1 coverage claim).  Each class is drawn from the
#: Bugtraq category it predominantly lives in.
STUDIED_CLASS_QUOTAS: Dict[str, Tuple[int, BugtraqCategory]] = {
    "stack buffer overflow": (700, BugtraqCategory.BOUNDARY_CONDITION),
    "heap overflow": (160, BugtraqCategory.BOUNDARY_CONDITION),
    "signed integer overflow": (90, BugtraqCategory.BOUNDARY_CONDITION),
    "format string": (200, BugtraqCategory.INPUT_VALIDATION),
    "input validation": (154, BugtraqCategory.INPUT_VALIDATION),
}

_SOFTWARE_POOL = [
    "Sendmail", "wu-ftpd", "Apache", "BIND", "OpenSSH", "ProFTPD",
    "Microsoft IIS", "Null HTTPD", "GHTTPD", "rpc.statd", "xterm",
    "rwalld", "lpd", "telnetd", "imapd", "Squid", "Samba", "inn",
    "Kerberos", "mod_ssl", "CVS", "sudo", "at", "crontab",
]

_TITLE_VERBS = {
    BugtraqCategory.INPUT_VALIDATION: "Input Validation",
    BugtraqCategory.BOUNDARY_CONDITION: "Buffer Overflow",
    BugtraqCategory.DESIGN: "Design Flaw",
    BugtraqCategory.EXCEPTIONAL_CONDITIONS: "Exception Handling",
    BugtraqCategory.ACCESS_VALIDATION: "Access Validation",
    BugtraqCategory.RACE_CONDITION: "Race Condition",
    BugtraqCategory.CONFIGURATION: "Default Configuration",
    BugtraqCategory.ORIGIN_VALIDATION: "Origin Validation",
    BugtraqCategory.ATOMICITY: "Partial Update",
    BugtraqCategory.ENVIRONMENT: "Environment Interaction",
    BugtraqCategory.SERIALIZATION: "Serialization",
    BugtraqCategory.UNKNOWN: "Unclassified",
}

_CLASS_BY_CATEGORY = {
    BugtraqCategory.INPUT_VALIDATION: "input validation (other)",
    BugtraqCategory.BOUNDARY_CONDITION: "buffer overflow (other)",
    BugtraqCategory.DESIGN: "design error",
    BugtraqCategory.EXCEPTIONAL_CONDITIONS: "exception handling",
    BugtraqCategory.ACCESS_VALIDATION: "access validation",
    BugtraqCategory.RACE_CONDITION: "race condition",
    BugtraqCategory.CONFIGURATION: "configuration",
    BugtraqCategory.ORIGIN_VALIDATION: "origin validation",
    BugtraqCategory.ATOMICITY: "atomicity",
    BugtraqCategory.ENVIRONMENT: "environment",
    BugtraqCategory.SERIALIZATION: "serialization",
    BugtraqCategory.UNKNOWN: "unknown",
}


def _random_date(rng: random.Random) -> str:
    year = rng.randint(1996, 2002)
    month = rng.randint(1, 12)
    day = rng.randint(1, 28)
    return f"{year:04d}-{month:02d}-{day:02d}"


def generate_reports(
    total: int = TOTAL_REPORTS, seed: int = 20021130
) -> List[VulnerabilityReport]:
    """Synthesize ``total`` reports with Figure 1 marginals.

    For ``total != TOTAL_REPORTS`` the category and class quotas are
    scaled proportionally (largest-remainder rounding keeps the sum
    exact), so smaller corpora remain distribution-faithful for fast
    tests.
    """
    rng = random.Random(seed)
    category_counts = _scale_counts(FIGURE1_COUNTS, total)
    class_quotas = {
        cls: (_scale_one(count, total), category)
        for cls, (count, category) in STUDIED_CLASS_QUOTAS.items()
    }

    reports: List[VulnerabilityReport] = []
    next_id = 1
    for category, count in category_counts.items():
        # Carve the studied classes out of their host categories first.
        remaining = count
        for cls, (quota, host) in class_quotas.items():
            if host is not category:
                continue
            for _ in range(min(quota, remaining)):
                reports.append(_make_report(rng, next_id, category, cls))
                next_id += 1
            remaining -= min(quota, remaining)
        default_class = _CLASS_BY_CATEGORY[category]
        for _ in range(remaining):
            reports.append(_make_report(rng, next_id, category, default_class))
            next_id += 1
    rng.shuffle(reports)
    return reports


def _make_report(
    rng: random.Random, report_id: int, category: BugtraqCategory, cls: str
) -> VulnerabilityReport:
    software = rng.choice(_SOFTWARE_POOL)
    return VulnerabilityReport(
        bugtraq_id=report_id,
        title=f"{software} {_TITLE_VERBS[category]} Vulnerability",
        category=category,
        vulnerability_class=cls,
        software=software,
        version=f"{rng.randint(1, 9)}.{rng.randint(0, 9)}",
        published=_random_date(rng),
        remote=rng.random() < 0.55,
        exploit_available=rng.random() < 0.2,
    )


def _scale_one(count: int, total: int) -> int:
    return round(count * total / TOTAL_REPORTS)


def _scale_counts(
    counts: Dict[BugtraqCategory, int], total: int
) -> Dict[BugtraqCategory, int]:
    """Proportional scaling with largest-remainder correction so the
    scaled counts sum exactly to ``total``."""
    if total == TOTAL_REPORTS:
        return dict(counts)
    raw = {
        category: count * total / TOTAL_REPORTS
        for category, count in counts.items()
    }
    floored = {category: int(value) for category, value in raw.items()}
    shortfall = total - sum(floored.values())
    by_remainder = sorted(
        raw, key=lambda category: raw[category] - floored[category], reverse=True
    )
    for category in by_remainder[:shortfall]:
        floored[category] += 1
    return floored
