"""Bugtraq-style vulnerability data: schema, curated corpus, synthetic
full-scale database, queries, and the Section 3 statistics.

The real Securityfocus database is not redistributable; the synthetic
generator reproduces its category marginals (Figure 1) and the studied
family's 22% share exactly, deterministically.  The curated corpus holds
the ~15 vulnerabilities the paper names, with their real Bugtraq IDs and
elementary-activity decompositions.
"""

from .corpus import (
    BUFFER_OVERFLOW_CHAIN,
    CORPUS,
    FORMAT_STRING_TRIO,
    STUDIED_CLASSES,
    TABLE1_REPORTS,
    corpus_report,
)
from .database import BugtraqDatabase
from .io import (
    database_from_json,
    database_to_json,
    dump_database,
    load_database,
    report_from_dict,
    report_to_dict,
)
from .generator import (
    FIGURE1_COUNTS,
    FIGURE1_PERCENTAGES,
    STUDIED_CLASS_QUOTAS,
    TOTAL_REPORTS,
    generate_reports,
)
from .schema import ActivityAnnotation, VulnerabilityReport
from .stats import (
    CategoryRow,
    Table1Row,
    dominant_categories,
    figure1_breakdown,
    remote_share,
    studied_family_share,
    table1_ambiguity,
)

__all__ = [
    "BUFFER_OVERFLOW_CHAIN",
    "CORPUS",
    "FORMAT_STRING_TRIO",
    "STUDIED_CLASSES",
    "TABLE1_REPORTS",
    "corpus_report",
    "BugtraqDatabase",
    "database_from_json",
    "database_to_json",
    "dump_database",
    "load_database",
    "report_from_dict",
    "report_to_dict",
    "FIGURE1_COUNTS",
    "FIGURE1_PERCENTAGES",
    "STUDIED_CLASS_QUOTAS",
    "TOTAL_REPORTS",
    "generate_reports",
    "ActivityAnnotation",
    "VulnerabilityReport",
    "CategoryRow",
    "Table1Row",
    "dominant_categories",
    "figure1_breakdown",
    "remote_share",
    "studied_family_share",
    "table1_ambiguity",
]
