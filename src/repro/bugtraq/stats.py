"""Statistical analysis of the vulnerability database (Section 3).

Regenerates the paper's quantitative artifacts:

* :func:`figure1_breakdown` — the category pie chart's numbers: count
  and integer percentage per category, sorted as the paper lists them.
* :func:`studied_family_share` — the Section 1 claim that the studied
  classes constitute 22% of all vulnerabilities.
* :func:`table1_ambiguity` — Table 1's demonstration that the same
  vulnerability type lands in three categories depending on which
  elementary activity anchors the classification.
* :func:`dominant_categories` — the "pie chart is dominated by five
  categories" observation (Section 3.1).

Aggregates ride the database's cached counters and the predicate batch
path (:meth:`~repro.bugtraq.database.BugtraqDatabase.count_matching`),
so repeated figure/table regeneration over the full 5925-report corpus
costs one scan, not one per query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.classification import ActivityKind, BugtraqCategory, categorize_by_activity
from ..core.predicates import Predicate
from .corpus import STUDIED_CLASSES, TABLE1_REPORTS, corpus_report
from .database import BugtraqDatabase

__all__ = [
    "CategoryRow",
    "figure1_breakdown",
    "studied_family_share",
    "remote_share",
    "dominant_categories",
    "Table1Row",
    "table1_ambiguity",
]

#: Remote exploitability as a first-class predicate — evaluated over the
#: whole corpus through the batch path.
REMOTE = Predicate(lambda report: report.remote, "remotely exploitable")


def remote_share(db: BugtraqDatabase) -> Tuple[int, float]:
    """(count, fraction) of remotely exploitable reports, counted via
    the predicate batch path (one sweep over the corpus)."""
    count = db.count_matching(REMOTE)
    return count, count / (len(db) or 1)


@dataclass(frozen=True)
class CategoryRow:
    """One slice of the Figure 1 pie."""

    category: BugtraqCategory
    count: int
    percent: int  # rounded to integer, as the figure displays

    def __str__(self) -> str:
        return f"{self.category.value:<45} {self.count:>5}  {self.percent:>3}%"


def figure1_breakdown(db: BugtraqDatabase) -> List[CategoryRow]:
    """Category counts and rounded percentages, descending by count."""
    counts = db.category_counts()
    total = len(db) or 1
    rows = [
        CategoryRow(
            category=category,
            count=counts.get(category, 0),
            percent=round(100 * counts.get(category, 0) / total),
        )
        for category in BugtraqCategory
    ]
    rows.sort(key=lambda row: row.count, reverse=True)
    return rows


def dominant_categories(db: BugtraqDatabase, top: int = 5) -> List[CategoryRow]:
    """The five categories the paper notes dominate the chart."""
    return figure1_breakdown(db)[:top]


def studied_family_share(db: BugtraqDatabase) -> Tuple[int, float]:
    """(count, fraction) of reports in the studied vulnerability classes
    (stack/heap/integer overflow, input validation, format string) —
    the Section 1 "22% of all vulnerabilities" figure."""
    class_counts = db.class_counts()
    count = sum(class_counts.get(cls, 0) for cls in STUDIED_CLASSES)
    return count, count / (len(db) or 1)


@dataclass(frozen=True)
class Table1Row:
    """One row of Table 1: a signed-integer-overflow report, the
    elementary activity anchoring its classification, and the category
    that anchor yields."""

    bugtraq_id: int
    description: str
    elementary_activity: ActivityKind
    assigned_category: BugtraqCategory
    anchored_category: BugtraqCategory

    @property
    def consistent(self) -> bool:
        """Does activity-anchored classification reproduce the analyst's
        assignment?  (Table 1 shows it does — that's the mechanism.)"""
        return self.assigned_category is self.anchored_category


#: The activity each Table 1 analyst anchored on, per report.
_TABLE1_ANCHORS: Dict[int, ActivityKind] = {
    3163: ActivityKind.GET_INPUT,
    5493: ActivityKind.USE_AS_INDEX,
    3958: ActivityKind.TRANSFER_CONTROL,
}


def table1_ambiguity() -> List[Table1Row]:
    """Reproduce Table 1: three reports of the *same* vulnerability type
    assigned three different categories, each explained by its anchoring
    elementary activity."""
    rows: List[Table1Row] = []
    for bugtraq_id in TABLE1_REPORTS:
        report = corpus_report(bugtraq_id)
        anchor = _TABLE1_ANCHORS[bugtraq_id]
        rows.append(
            Table1Row(
                bugtraq_id=bugtraq_id,
                description=report.title,
                elementary_activity=anchor,
                assigned_category=report.category,
                anchored_category=categorize_by_activity(anchor),
            )
        )
    return rows
