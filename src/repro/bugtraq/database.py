"""Query layer over a set of vulnerability reports.

Provides the operations the paper's statistical study needs — counting
by category, filtering by class/software/remote-ness, and looking up the
curated case-study reports — over either the synthetic full-scale
database or any subset.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional

from ..core.classification import BugtraqCategory
from ..obs import DEFAULT as _OBS
from .corpus import CORPUS
from .generator import generate_reports
from .schema import VulnerabilityReport

__all__ = ["BugtraqDatabase"]


class BugtraqDatabase:
    """An in-memory collection of vulnerability reports.

    Aggregations (:meth:`category_counts`, :meth:`class_counts`) are
    computed once and cached — corpus-scale statistics sweeps re-query
    them per figure/table, and at 5925 reports the re-scan used to
    dominate.  The cache is invalidated on :meth:`add`.
    """

    def __init__(self, reports: Iterable[VulnerabilityReport] = ()) -> None:
        self._reports: List[VulnerabilityReport] = list(reports)
        self._by_id: Dict[int, VulnerabilityReport] = {
            report.bugtraq_id: report
            for report in self._reports
            if report.bugtraq_id is not None
        }
        self._category_counts: Optional[Counter] = None
        self._class_counts: Optional[Counter] = None

    # -- constructors -----------------------------------------------------

    @classmethod
    def synthetic(cls, total: int = 5925, seed: int = 20021130
                  ) -> "BugtraqDatabase":
        """The full-scale synthetic database (Figure 1 marginals)."""
        return cls(generate_reports(total=total, seed=seed))

    @classmethod
    def curated(cls) -> "BugtraqDatabase":
        """Only the paper's named vulnerabilities."""
        return cls(CORPUS)

    # -- collection protocol ------------------------------------------------

    def __len__(self) -> int:
        return len(self._reports)

    def __iter__(self) -> Iterator[VulnerabilityReport]:
        return iter(self._reports)

    def add(self, report: VulnerabilityReport) -> None:
        """Insert a report (e.g. the newly discovered #6255)."""
        if report.bugtraq_id is not None and report.bugtraq_id in self._by_id:
            raise ValueError(f"duplicate Bugtraq ID {report.bugtraq_id}")
        self._reports.append(report)
        if report.bugtraq_id is not None:
            self._by_id[report.bugtraq_id] = report
        self._category_counts = None
        self._class_counts = None

    # -- lookup ----------------------------------------------------------------

    def get(self, bugtraq_id: int) -> VulnerabilityReport:
        """Report by Bugtraq ID."""
        if _OBS.enabled:
            _OBS.incr("bugtraq.queries.lookup")
        return self._by_id[bugtraq_id]

    def __contains__(self, bugtraq_id: object) -> bool:
        return bugtraq_id in self._by_id

    # -- queries -------------------------------------------------------------------

    def where(
        self, keep: Callable[[VulnerabilityReport], bool]
    ) -> "BugtraqDatabase":
        """Filtered copy."""
        if _OBS.enabled:
            _OBS.incr("bugtraq.queries.filter")
        return BugtraqDatabase(r for r in self._reports if keep(r))

    def in_category(self, category: BugtraqCategory) -> "BugtraqDatabase":
        """Reports of one category."""
        return self.where(lambda r: r.category is category)

    def of_class(self, vulnerability_class: str) -> "BugtraqDatabase":
        """Reports of one fine-grained class."""
        return self.where(lambda r: r.vulnerability_class == vulnerability_class)

    def for_software(self, software: str) -> "BugtraqDatabase":
        """Reports against one piece of software."""
        return self.where(lambda r: r.software == software)

    def remote_only(self) -> "BugtraqDatabase":
        """Remotely exploitable reports."""
        return self.where(lambda r: r.remote)

    # -- aggregation ---------------------------------------------------------------------

    def category_counts(self) -> Counter:
        """Report count per category (cached; callers get a copy)."""
        if self._category_counts is None:
            if _OBS.enabled:
                _OBS.incr("bugtraq.agg.computed")
            self._category_counts = Counter(
                report.category for report in self._reports
            )
        elif _OBS.enabled:
            _OBS.incr("bugtraq.agg.cache_hits")
        return Counter(self._category_counts)

    def class_counts(self) -> Counter:
        """Report count per fine-grained vulnerability class (cached;
        callers get a copy)."""
        if self._class_counts is None:
            if _OBS.enabled:
                _OBS.incr("bugtraq.agg.computed")
            self._class_counts = Counter(
                report.vulnerability_class for report in self._reports
            )
        elif _OBS.enabled:
            _OBS.incr("bugtraq.agg.cache_hits")
        return Counter(self._class_counts)

    def category_share(self, category: BugtraqCategory) -> float:
        """Fraction of the database in one category."""
        if not self._reports:
            return 0.0
        return self.category_counts()[category] / len(self._reports)

    def count_matching(self, pred: Any) -> int:
        """Reports satisfying a :class:`~repro.core.predicates.Predicate`,
        counted through its batch path (one call, not N)."""
        if _OBS.enabled:
            _OBS.incr("bugtraq.queries.count_matching")
        return sum(pred.evaluate_batch(self._reports))
