"""Record schema for Bugtraq-style vulnerability reports.

Each report in the real database provides "version number of the
vulnerable software, date of discovery, an assigned vulnerability ID,
cause of the vulnerability, and possible exploits" (Section 3.1).  The
schema mirrors those fields plus the finer *vulnerability class*
(e.g. "stack buffer overflow") the paper's statistics and Table 1 use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..core.classification import ActivityKind, BugtraqCategory

__all__ = ["VulnerabilityReport", "ActivityAnnotation"]


@dataclass(frozen=True)
class ActivityAnnotation:
    """One elementary activity of a report's exploit chain, with the
    category an analyst anchoring on it would assign (Table 1)."""

    activity: ActivityKind
    description: str


@dataclass(frozen=True)
class VulnerabilityReport:
    """A Bugtraq-style vulnerability report."""

    bugtraq_id: Optional[int]
    title: str
    category: BugtraqCategory
    vulnerability_class: str
    software: str = ""
    version: str = ""
    published: str = ""  # ISO date
    remote: bool = False
    exploit_available: bool = False
    activities: Tuple[ActivityAnnotation, ...] = field(default_factory=tuple)

    @property
    def identifier(self) -> str:
        """Displayable identifier (``#3163`` or the title for reports
        without a Bugtraq ID, like the CERT-advisory rwall case)."""
        if self.bugtraq_id is not None:
            return f"#{self.bugtraq_id}"
        return self.title

    def anchored_category(self, activity: ActivityKind) -> BugtraqCategory:
        """The category an analyst assigns when anchoring on one of this
        report's elementary activities (the Table 1 mechanism)."""
        from ..core.classification import categorize_by_activity

        if activity not in {a.activity for a in self.activities}:
            raise ValueError(
                f"{self.identifier} has no elementary activity {activity}"
            )
        return categorize_by_activity(activity)
