"""Section 6's Lemma, verified over every paper model:

(1) securing an operation requires every constituent predicate to be
    correctly implemented;
(2) securing any one operation in an exploit chain foils the exploit.

Plus the Observation 1 foil-point census: every elementary activity the
exploit rides through is an independent foiling opportunity.
"""

from conftest import print_table

from repro.core import check_lemma_part1, check_lemma_part2, minimal_foil_points, verify_lemma
from repro.models import (
    all_exploit_inputs,
    all_operation_domains,
    all_paper_models,
)


def test_lemma_part1_all_operations(benchmark):
    """Part 1 over every operation of every model."""
    models = all_paper_models()
    domains = all_operation_domains()

    def verify_all():
        results = {}
        for label, model in models.items():
            for operation in model.operations:
                domain = domains[label][operation.name]
                results[(label, operation.name)] = check_lemma_part1(
                    operation, domain
                )
        return results

    results = benchmark(verify_all)
    assert all(results.values())
    assert len(results) == sum(len(m.operations)
                               for m in models.values())
    print_table(
        "Lemma part 1 — per-operation verification (reproduced)",
        (f"{label:<42} {operation:<45} holds"
         for (label, operation) in sorted(results)),
    )


def test_lemma_part2_all_models(benchmark):
    """Part 2 over every model's exploit."""
    models = all_paper_models()
    exploits = all_exploit_inputs()

    def verify_all():
        return {
            label: check_lemma_part2(model, exploits[label])
            for label, model in models.items()
        }

    results = benchmark(verify_all)
    assert all(results.values())
    print_table(
        "Lemma part 2 — securing any one operation foils (reproduced)",
        (f"{label:<45} holds" for label in sorted(results)),
    )


def test_observation1_foil_point_census(benchmark):
    """Count, per model, the single-activity fixes that foil the
    exploit — each is a security-checking opportunity (Observation 1)."""
    models = all_paper_models()
    exploits = all_exploit_inputs()

    def census():
        return {
            label: [str(p) for p in
                    minimal_foil_points(model, exploits[label])]
            for label, model in models.items()
        }

    points = benchmark(census)
    assert all(points.values())  # every exploit has at least one foil point
    total = sum(len(p) for p in points.values())
    print_table(
        f"Observation 1 — {total} independent foiling opportunities "
        f"across {len(points)} exploits",
        (f"{label}: {len(plist)} foil point(s)"
         for label, plist in sorted(points.items())),
    )


def test_full_lemma_reports(benchmark):
    """The aggregated verify_lemma report holds for every model."""
    models = all_paper_models()
    exploits = all_exploit_inputs()
    domains = all_operation_domains()

    def verify_all():
        return {
            label: verify_lemma(model, domains[label], exploits[label])
            for label, model in models.items()
        }

    reports = benchmark(verify_all)
    assert all(report.holds for report in reports.values())
