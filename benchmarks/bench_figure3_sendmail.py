"""Figure 3: the Sendmail Debugging Function Signed Integer Overflow
(#3163) — model traversal and executable exploit.

Reproduced shape: the exploit traverses two operations via the hidden
paths of pFSM2 (x <= 100 instead of 0 <= x <= 100) and pFSM3 (no GOT
consistency check), ending in "Execute Mcode"; the derived predicate
forecloses it; the executable exploit really corrupts addr_setuid and
hijacks the setuid() dispatch.
"""

from conftest import print_table

import pytest

from repro.apps import Sendmail, SendmailVariant, craft_got_exploit
from repro.core import minimal_foil_points, render_model
from repro.memory import ControlFlowHijack
from repro.models import sendmail_model


def test_figure3_model_traversal(benchmark):
    """Traverse the Figure 3 cascade with the exploit input."""
    model = sendmail_model.build_model()
    exploit = sendmail_model.exploit_input()

    result = benchmark(lambda: model.run(exploit))

    assert result.compromised
    assert [e.subject for e in result.trace.hidden_path_steps()] == \
        ["pFSM2", "pFSM3"]
    assert result.trace.operations_completed() == [
        sendmail_model.OPERATION_1, sendmail_model.OPERATION_2,
    ]
    print_table("Figure 3 — exploit trace (reproduced)",
                result.trace.to_text().splitlines())


def test_figure3_executable_exploit(benchmark):
    """Run the real exploit against the executable Sendmail model."""

    def exploit_run():
        app = Sendmail(SendmailVariant.VULNERABLE)
        for flag in craft_got_exploit(app):
            result = app.tTflag(flag)
            assert result.accepted
        try:
            app.call_setuid()
            return None
        except ControlFlowHijack as hijack:
            return app, hijack

    app, hijack = benchmark(exploit_run)
    assert app.process.is_mcode(hijack.target)
    print_table(
        "Figure 3 — executable consequence",
        [f"setuid() dispatched to Mcode at {hijack.target:#x} "
         f"(legitimate entry {hijack.legitimate:#x})"],
    )


def test_figure3_patched_forecloses(benchmark):
    """The Observation 3 predicate (0 <= x <= 100) stops the exploit."""

    def patched_run():
        app = Sendmail(SendmailVariant.PATCHED)
        rejected = [not app.tTflag(flag).accepted
                    for flag in craft_got_exploit(app)]
        return rejected, app.got_setuid_consistent()

    rejected, consistent = benchmark(patched_run)
    assert all(rejected)
    assert consistent


def test_figure3_foil_points(benchmark):
    """Observation 1 over Figure 3: which single fixes foil the exploit."""
    model = sendmail_model.build_model()
    exploit = sendmail_model.exploit_input()
    wrapping = sendmail_model.wrapping_exploit_input()

    points = benchmark(lambda: minimal_foil_points(model, exploit))
    assert {p.pfsm_name for p in points} == {"pFSM2", "pFSM3"}
    # The wrapping variant also passes through pFSM1's hidden path.
    wrapping_points = minimal_foil_points(model, wrapping)
    assert {p.pfsm_name for p in wrapping_points} == \
        {"pFSM1", "pFSM2", "pFSM3"}
    print_table(
        "Figure 3 — independent foiling opportunities",
        [str(p) for p in wrapping_points],
    )


def test_figure3_render(benchmark):
    """The model renders to the figure's structure."""
    model = sendmail_model.build_model()
    text = benchmark(lambda: render_model(model))
    assert "Bugtraq #3163" in text
    assert "propagation gate" in text
    assert "Execute Mcode" in text
