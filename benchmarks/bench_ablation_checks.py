"""Ablation: the relative power of the three generic check types.

DESIGN.md calls out the paper's Section 6 taxonomy as a design choice
worth quantifying: if a project could only deploy ONE of the three
generic check types everywhere (all content/attribute checks, or all
reference-consistency checks, or all object-type checks), which
exploits of the extended model set would it stop?

The expected shape, from the paper's own frequency analysis: content/
attribute checks stop the most exploits (they guard the earliest
activities of most chains), reference-consistency checks stop all the
memory-corruption chains (they guard the last activity), and object-
type checks alone stop only the type-confusion cases.
"""

from conftest import print_table

from repro.core import PfsmType
from repro.models import (
    all_extended_exploit_inputs,
    all_extended_models,
)


def _secure_by_type(model, check_type):
    """Copy of a model with every pFSM of one generic type secured."""
    hardened = model
    for operation, pfsm in model.all_pfsms():
        if pfsm.check_type is check_type:
            hardened = hardened.with_pfsm_secured(operation.name, pfsm.name)
    return hardened


def test_ablation_single_check_type(benchmark):
    """Deploy one check type everywhere; count surviving exploits."""
    models = all_extended_models()
    exploits = all_extended_exploit_inputs()

    def ablate():
        survival = {}
        for check_type in PfsmType:
            survived = []
            for label, model in models.items():
                hardened = _secure_by_type(model, check_type)
                if hardened.is_compromised_by(exploits[label]):
                    survived.append(label)
            survival[check_type] = survived
        return survival

    survival = benchmark(ablate)
    total = len(models)
    stopped = {t: total - len(s) for t, s in survival.items()}

    # Content/attribute checks guard an early activity of every chain
    # except the pure reference-consistency race: they stop the most.
    assert stopped[PfsmType.CONTENT_ATTRIBUTE] >= \
        stopped[PfsmType.REFERENCE_CONSISTENCY]
    assert stopped[PfsmType.CONTENT_ATTRIBUTE] >= \
        stopped[PfsmType.OBJECT_TYPE]
    # Object-type checks alone are the weakest (few chains have one).
    assert stopped[PfsmType.OBJECT_TYPE] <= \
        stopped[PfsmType.REFERENCE_CONSISTENCY]

    print_table(
        f"Ablation — one generic check type deployed everywhere "
        f"({total} exploits)",
        (f"{check_type.value:<32} stops {stopped[check_type]:>2}/{total}; "
         f"survives: {', '.join(s) or 'none'}"
         for check_type, s in survival.items()),
    )


def test_ablation_defense_in_depth(benchmark):
    """Deploying any TWO check types everywhere stops every exploit
    whose chain includes both types — and the full triple stops all."""
    models = all_extended_models()
    exploits = all_extended_exploit_inputs()

    def layered():
        results = {}
        pairs = [
            (PfsmType.CONTENT_ATTRIBUTE, PfsmType.REFERENCE_CONSISTENCY),
            (PfsmType.CONTENT_ATTRIBUTE, PfsmType.OBJECT_TYPE),
            (PfsmType.OBJECT_TYPE, PfsmType.REFERENCE_CONSISTENCY),
        ]
        for first, second in pairs:
            survived = 0
            for label, model in models.items():
                hardened = _secure_by_type(
                    _secure_by_type(model, first), second
                )
                if hardened.is_compromised_by(exploits[label]):
                    survived += 1
            results[(first.value, second.value)] = survived
        all_three = 0
        for label, model in models.items():
            hardened = model
            for check_type in PfsmType:
                hardened = _secure_by_type(hardened, check_type)
            if hardened.is_compromised_by(exploits[label]):
                all_three += 1
        results["all three"] = all_three
        return results

    results = benchmark(layered)
    assert results["all three"] == 0  # the Lemma's global consequence
    assert results[(PfsmType.CONTENT_ATTRIBUTE.value,
                    PfsmType.REFERENCE_CONSISTENCY.value)] == 0
    print_table(
        "Ablation — layered check types (surviving exploits)",
        (f"{str(combo):<70} {count}" for combo, count in results.items()),
    )


def test_ablation_earliest_vs_latest_fix(benchmark):
    """Fixing the first versus the last elementary activity of each
    chain: both foil (Observation 1), a structural double-check that no
    chain depends on a *specific* single position."""
    models = all_extended_models()
    exploits = all_extended_exploit_inputs()

    def sweep():
        rows = []
        for label, model in models.items():
            exploit = exploits[label]
            original = model.run(exploit)
            hidden = [e.subject for e in original.trace.hidden_path_steps()]
            first, last = hidden[0], hidden[-1]
            first_fixed = last_fixed = None
            for operation, pfsm in model.all_pfsms():
                if pfsm.name == first and first_fixed is None:
                    first_fixed = not model.with_pfsm_secured(
                        operation.name, pfsm.name
                    ).is_compromised_by(exploit)
                if pfsm.name == last:
                    last_fixed = not model.with_pfsm_secured(
                        operation.name, pfsm.name
                    ).is_compromised_by(exploit)
            rows.append((label, first_fixed, last_fixed))
        return rows

    rows = benchmark(sweep)
    assert all(first and last for _label, first, last in rows)
    print_table(
        "Ablation — earliest vs latest hidden activity as the fix point",
        (f"{label:<45} first-fix foils={first}  last-fix foils={last}"
         for label, first, last in rows),
    )
