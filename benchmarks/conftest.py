"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and
asserts the reproduced shape (who wins, category proportions, which
checks foil which exploits).  pytest-benchmark provides the timing
harness; the reproduced rows are attached to ``benchmark.extra_info``
and printed, so ``pytest benchmarks/ --benchmark-only -s`` shows the
regenerated artifact next to its timing.
"""

from typing import Iterable


def print_table(title: str, rows: Iterable[str]) -> None:
    """Uniform table printer for benchmark output."""
    bar = "=" * 72
    print(f"\n{bar}\n{title}\n{bar}")
    for row in rows:
        print(row)
