"""Table 1, executable edition: each of the three signed-integer
reports is backed by a running exploit on its application model, and
the category each analyst assigned corresponds to the elementary
activity where that exploit's decisive hidden path lives.

* #3163 (Input Validation anchor): Sendmail — the decisive miss is at
  input handling (no check that the string represents a sane integer /
  index lower bound).
* #5493 (Boundary Condition anchor): FreeBSD — the decisive miss is at
  the buffer-bound comparison (one-sided signed check).
* #3958 (Access Validation anchor): rsync — the decisive miss is at the
  dispatch through an unverified function pointer.
"""

from conftest import print_table

from repro.apps import (
    FreebsdKernel,
    FreebsdVariant,
    RsyncDaemon,
    RsyncVariant,
    Sendmail,
    SendmailVariant,
    craft_cred_overwrite,
    craft_got_exploit,
    craft_negative_opcode,
)
from repro.memory import ControlFlowHijack


def _run_sendmail() -> bool:
    app = Sendmail(SendmailVariant.VULNERABLE)
    for flag in craft_got_exploit(app):
        if not app.tTflag(flag).accepted:
            return False
    try:
        app.call_setuid()
        return False
    except ControlFlowHijack as hijack:
        return app.process.is_mcode(hijack.target)


def _run_freebsd() -> bool:
    kernel = FreebsdKernel(FreebsdVariant.VULNERABLE)
    kernel.copy_request(craft_cred_overwrite(kernel), -1)
    return kernel.escalated


def _run_rsync() -> bool:
    daemon = RsyncDaemon(RsyncVariant.VULNERABLE)
    mcode = daemon.process.plant_mcode()
    daemon.receive_request(mcode.to_bytes(4, "little"))
    result = daemon.dispatch(craft_negative_opcode(daemon))
    return result.hijacked and daemon.process.is_mcode(result.handler)


def test_table1_all_three_rows_exploit(benchmark):
    """All three Table 1 vulnerabilities execute end to end."""

    def run_all():
        return {
            "#3163 Sendmail (Input Validation)": _run_sendmail(),
            "#5493 FreeBSD (Boundary Condition)": _run_freebsd(),
            "#3958 rsync (Access Validation)": _run_rsync(),
        }

    results = benchmark(run_all)
    assert all(results.values()), results
    print_table(
        "Table 1 — executable exploits, one per row (reproduced)",
        (f"{row:<40} exploited={'YES' if hit else 'no'}"
         for row, hit in results.items()),
    )


def test_table1_one_class_three_consequences(benchmark):
    """The same root class (signed integer misuse) yields three distinct
    observable consequences — the surface diversity behind the three
    category assignments."""

    def consequences():
        sendmail = Sendmail(SendmailVariant.VULNERABLE)
        for flag in craft_got_exploit(sendmail):
            sendmail.tTflag(flag)
        got_corrupted = not sendmail.got_setuid_consistent()

        kernel = FreebsdKernel(FreebsdVariant.VULNERABLE)
        kernel.copy_request(craft_cred_overwrite(kernel), -1)
        cred_overwritten = not kernel.cred_intact()

        daemon = RsyncDaemon(RsyncVariant.VULNERABLE)
        mcode = daemon.process.plant_mcode()
        daemon.receive_request(mcode.to_bytes(4, "little"))
        dispatched = daemon.dispatch(craft_negative_opcode(daemon)).hijacked
        return got_corrupted, cred_overwritten, dispatched

    got, cred, dispatched = benchmark(consequences)
    assert got and cred and dispatched
    print_table(
        "Table 1 — three consequences of one vulnerability class",
        [
            "#3163: GOT entry of setuid() overwritten (input anchor)",
            "#5493: kernel ucred overwritten across the buffer bound",
            "#3958: control dispatched through an unverified pointer",
        ],
    )


def test_table1_fixes_per_anchor(benchmark):
    """Each row's fix lives at its anchoring activity."""

    def fixes():
        sendmail = Sendmail(SendmailVariant.PATCHED)
        sendmail_fixed = all(
            not sendmail.tTflag(flag).accepted
            for flag in craft_got_exploit(sendmail)
        )

        kernel = FreebsdKernel(FreebsdVariant.PATCHED)
        freebsd_fixed = not kernel.copy_request(
            craft_cred_overwrite(kernel), -1
        ).accepted

        daemon = RsyncDaemon(RsyncVariant.GUARDED)
        mcode = daemon.process.plant_mcode()
        daemon.receive_request(mcode.to_bytes(4, "little"))
        rsync_fixed = not daemon.dispatch(
            craft_negative_opcode(daemon)
        ).accepted
        return sendmail_fixed, freebsd_fixed, rsync_fixed

    results = benchmark(fixes)
    assert all(results)
