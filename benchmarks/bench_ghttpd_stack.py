"""GHTTPD #5960 ([21], Table 2): stack smash execution and the
per-activity defense matrix (length check / StackGuard / split stack).
"""

from conftest import print_table

from repro.apps import Ghttpd, GhttpdVariant, craft_stack_smash
from repro.models import ghttpd_model


def test_ghttpd_executable_smash(benchmark):
    """The over-long request really replaces the return address."""

    def smash():
        app = Ghttpd(GhttpdVariant.VULNERABLE)
        return app, app.serve(craft_stack_smash(app))

    app, result = benchmark(smash)
    assert result.hijacked
    assert app.process.is_mcode(result.returned_to)
    print_table(
        "GHTTPD #5960 — executable consequence",
        [f"Log() returned to Mcode at {result.returned_to:#x}"],
    )


def test_ghttpd_defense_matrix(benchmark):
    """Each elementary activity's defense independently foils the smash
    (Observation 1 quantitatively)."""

    def matrix():
        outcomes = {}
        for variant in GhttpdVariant:
            app = Ghttpd(variant)
            result = app.serve(craft_stack_smash(app))
            outcomes[variant.name] = result.hijacked
        return outcomes

    outcomes = benchmark(matrix)
    assert outcomes == {
        "VULNERABLE": True,
        "PATCHED": False,
        "STACKGUARD": False,
        "SPLITSTACK": False,
    }
    print_table(
        "GHTTPD #5960 — defense matrix (reproduced)",
        (f"{name:<12} hijacked={'YES' if hit else 'no'}"
         for name, hit in outcomes.items()),
    )


def test_ghttpd_model_agreement(benchmark):
    """The two-pFSM model reproduces the executable outcome."""
    model = ghttpd_model.build_model()

    result = benchmark(lambda: model.run(ghttpd_model.exploit_input()))
    assert result.compromised
    assert result.hidden_path_count == 2
    print_table("GHTTPD #5960 — exploit trace (reproduced)",
                result.trace.to_text().splitlines())


def test_ghttpd_defenses_transparent_for_benign(benchmark):
    """Defended variants serve ordinary requests unchanged."""

    def benign_sweep():
        return {
            variant.name: Ghttpd(variant).serve(b"GET / HTTP/1.0").accepted
            for variant in GhttpdVariant
        }

    outcomes = benchmark(benign_sweep)
    assert all(outcomes.values())
