"""Extension experiments: explicit state-space analysis and the
quantitative metrics layer over the full extended model set.

Not from the paper's evaluation — these exercise the two extensions the
paper points toward (model checking of the FSMs, and the parameter
derivation its related-work section says stochastic models need).
"""

from conftest import print_table

from repro.core import (
    Domain,
    WeightedDomain,
    build_state_space,
    compromise_probability,
    mean_effort_to_foil,
    model_fingerprint,
)
from repro.models import (
    all_extended_exploit_inputs,
    all_extended_models,
    all_extended_pfsm_domains,
    sendmail_model,
)


def test_statespace_reachability_all_models(benchmark):
    """Unroll every model; compromise must be hidden-reachable and
    benign completion must survive."""
    models = all_extended_models()
    domains = all_extended_pfsm_domains()

    def sweep():
        rows = []
        for label, model in models.items():
            space = build_state_space(model, domains[label])
            rows.append((
                label,
                space.node_count,
                len(space.hidden_edges()),
                space.compromise_reachable(),
                space.benign_path_exists(),
                len(space.exploit_paths(limit=64)),
            ))
        return rows

    rows = benchmark(sweep)
    assert all(reachable for _l, _n, _h, reachable, _b, _p in rows)
    assert all(benign for _l, _n, _h, _r, benign, _p in rows)
    # Exploit-path count is 2^h - 1 for h independent hidden edges in a
    # chain (each can be taken or not, minus the all-spec path).
    for _label, _nodes, hidden, _r, _b, paths in rows:
        assert paths == 2**hidden - 1
    print_table(
        "State spaces of the extended model set",
        (f"{label:<45} nodes={nodes:>3} hidden={hidden} paths={paths}"
         for label, nodes, hidden, _r, _b, paths in rows),
    )


def test_statespace_cut_sets(benchmark):
    """Cut sets disconnect the compromise in every model; securing the
    model empties the cut."""
    models = all_extended_models()
    domains = all_extended_pfsm_domains()

    def cuts():
        rows = []
        for label, model in models.items():
            space = build_state_space(model, domains[label])
            cut = space.cut_set()
            working = space.graph.copy()
            working.remove_edges_from(cut)
            from repro.core.statespace import StateSpace

            rows.append((label, len(cut),
                         not StateSpace(model, working).compromise_reachable()))
        return rows

    rows = benchmark(cuts)
    assert all(disconnected for _l, _n, disconnected in rows)
    print_table(
        "Cut sets (checks whose installation disconnects the exploit)",
        (f"{label:<45} |cut|={size}" for label, size, _d in rows),
    )


def test_metrics_compromise_probability_sendmail(benchmark):
    """Compromise probability under a boundary-probing input mix, before
    and after each fix level."""
    model = sendmail_model.build_model()

    def record(x):
        return {"str_x": x, "str_i": "1"}

    inputs = WeightedDomain.uniform(Domain(
        [record(s) for s in
         ("-3772", "-1", "0", "7", "50", "100", "101", "500",
          str(2**31), str(2**32 - 5))]
    ))

    def evaluate():
        vulnerable = compromise_probability(model, inputs)
        pfsm2_fixed = compromise_probability(
            model.with_pfsm_secured(sendmail_model.OPERATION_1, "pFSM2"),
            inputs,
        )
        secured = compromise_probability(model.fully_secured(), inputs)
        effort = mean_effort_to_foil(model, inputs)
        return vulnerable, pfsm2_fixed, secured, effort

    vulnerable, pfsm2_fixed, secured, effort = benchmark(evaluate)
    assert vulnerable > 0
    assert pfsm2_fixed == 0.0  # pFSM2 guards every exploiting input
    assert secured == 0.0
    assert effort == 2  # cascade order: pFSM1 first (insufficient), then pFSM2
    print_table(
        "Metrics — Sendmail compromise probability under boundary probes",
        [f"vulnerable:      P = {vulnerable:.2f}",
         f"pFSM2 fixed:     P = {pfsm2_fixed:.2f}",
         f"fully secured:   P = {secured:.2f}",
         f"effort to foil (cascade order): {effort} fixes"],
    )


def test_fingerprints_distinguish_fix_levels(benchmark):
    """Every fix level of every model has a distinct fingerprint, and
    rebuilding reproduces it — the regression-baseline use case."""
    models = all_extended_models()

    def fingerprint_all():
        prints = {}
        for label, model in models.items():
            prints[label] = model_fingerprint(model)
            prints[label + " [secured]"] = model_fingerprint(
                model.fully_secured()
            )
        return prints

    prints = benchmark(fingerprint_all)
    assert len(set(prints.values())) == len(prints)  # all distinct
    rebuilt = {label: model_fingerprint(model)
               for label, model in all_extended_models().items()}
    for label, digest in rebuilt.items():
        assert prints[label] == digest  # reproducible
