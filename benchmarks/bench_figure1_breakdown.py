"""Figure 1: breakdown of the 5925 Bugtraq reports over 12 categories,
plus the Section 1 claim that the studied family is 22% of the database.

Paper values (displayed percentages): input validation 23%, boundary
condition 21%, design 18%, exceptional conditions 11%, access validation
10%, race condition 6%, configuration 5%, origin validation 3%,
atomicity 2%, environment 1%, serialization 0%, unknown 0%.
"""

from conftest import print_table

from repro.bugtraq import (
    BugtraqDatabase,
    FIGURE1_PERCENTAGES,
    TOTAL_REPORTS,
    figure1_breakdown,
    studied_family_share,
)
from repro.core import BugtraqCategory


def test_figure1_category_breakdown(benchmark):
    """Regenerate the Figure 1 pie-chart numbers at full scale."""

    def build_and_break_down():
        db = BugtraqDatabase.synthetic()
        return db, figure1_breakdown(db)

    db, rows = benchmark(build_and_break_down)

    assert len(db) == TOTAL_REPORTS
    reproduced = {row.category: row.percent for row in rows}
    assert reproduced == FIGURE1_PERCENTAGES

    print_table(
        f"Figure 1 — Breakdown of {len(db)} vulnerabilities (reproduced)",
        (str(row) for row in rows),
    )
    benchmark.extra_info["percentages"] = {
        row.category.value: row.percent for row in rows
    }


def test_figure1_dominant_five(benchmark):
    """The five dominating categories cover 83% of the database."""
    db = BugtraqDatabase.synthetic()
    rows = benchmark(lambda: figure1_breakdown(db)[:5])
    assert [row.category for row in rows] == [
        BugtraqCategory.INPUT_VALIDATION,
        BugtraqCategory.BOUNDARY_CONDITION,
        BugtraqCategory.DESIGN,
        BugtraqCategory.EXCEPTIONAL_CONDITIONS,
        BugtraqCategory.ACCESS_VALIDATION,
    ]
    assert sum(row.percent for row in rows) == 83
    print_table(
        "Figure 1 — dominant five categories (83% of the database)",
        (str(row) for row in rows),
    )


def test_studied_family_is_22_percent(benchmark):
    """Section 1: stack/heap/integer overflow + input validation +
    format string = 22% of all Bugtraq vulnerabilities."""
    db = BugtraqDatabase.synthetic()
    count, share = benchmark(lambda: studied_family_share(db))
    assert count == 1304
    assert round(100 * share) == 22
    print_table(
        "Section 1 — studied family share",
        [f"studied classes: {count} of {len(db)} reports ({share:.1%}); "
         f"paper claims 22%"],
    )
    benchmark.extra_info["share"] = share
