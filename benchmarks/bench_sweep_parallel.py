"""Before/after benchmark of the batched, cached, parallel sweep engine.

Four comparisons, each recorded to ``BENCH_sweep.json`` so the BENCH_*
trajectory keeps recording:

* **hidden-witness search** — the 20k-element integer-domain search of
  ``bench_scale.py``, seed-style scalar scan vs the closed-form batch
  path (acceptance: ≥5x);
* **model sweep** — the full hidden-path sweep over every bundled model,
  seed-style naive serial engine vs ``sweep_models(workers=4)``
  (acceptance: parallel+batched+cached beats the serial baseline);
* **backend session** — a repeated-analysis session (the same corpus
  swept ``SESSION_REPEATS`` times, the shape of iterative model
  development) on the thread backend vs the process backend
  (acceptance: ≥2x at 4 workers).  The process backend wins by
  *remembering*: its scheduler keys every task by model fingerprint +
  predicate-spec hash, so after the first sweep warms the worker pool
  and the fingerprint memo, later sweeps in the session are lookups.
  The thread backend recomputes every time.  On a single-CPU runner the
  raw fork-and-pickle path has no parallelism advantage — the session
  framing is the honest one, and it is also the workload the scheduler
  was built for;
* **resume** — one corpus sweep recording to a JSONL result store, then
  the identical sweep resumed from that store with a cold scheduler
  (acceptance: the resumed sweep skips every task and beats the cold
  sweep);
* **plan** — a repeated-predicate corpus (several models whose specs
  share deep sub-predicate DAGs, over distinct string corpora — no
  interval fast path, no identity-memo shortcuts) swept with the
  predicate compiler disabled vs enabled (acceptance: the compiled
  path, including compile time, is ≥2x the uncompiled throughput).
  The compiled path wins three ways: flat fused closures instead of
  nested shielded combinator calls, selectivity-ordered short-circuit
  evaluation, and cross-task CSE — the shared sub-DAG is judged once
  per object per sweep, not once per model;
* **columnar** — scenario E: a numeric-heavy record corpus whose specs
  are multi-field conjunctions (no interval algebra applies), swept
  with the columnar engine disabled (compiled scalar scan) vs enabled
  (whole-column mask kernels; acceptance: ≥5x with numpy, ≥1.5x on the
  pure-stdlib fallback).  A shared-memory sub-check ships the same
  corpus to pool workers and requires the per-task domain payload to
  shrink ≥10x via ``multiprocessing.shared_memory`` column transfer;
* **cluster** — scenario F: the corpus sweep dispatched through the
  :mod:`repro.cluster` fabric over loopback TCP (a coordinator plus two
  worker agents) vs the local process backend.  The fabric pays
  base64/JSON framing and socket round-trips for every chunk, so the
  acceptance floor is *relative*: cluster throughput must stay ≥0.8x of
  the process backend on the same machine, with bit-identical findings.
  A reclaim-latency sub-stat measures the fault-recovery path: a worker
  claims a chunk and goes silent (connection open, no heartbeats), and
  the stat is how long the lease layer takes to reclaim the chunk —
  bounded by ``lease_timeout`` plus one reaper interval;
* **faults** — scenario G: the same loopback cluster sweep under a
  seeded :mod:`repro.faults` plan injecting a 1% socket-fault rate
  (dropped sends, delayed reads).  Recovery is supposed to be cheap:
  faulted throughput must stay ≥0.7x of the fault-free cluster run,
  with bit-identical findings.  A kill-and-resume sub-stat SIGKILLs a
  journaling ``repro sweep --backend cluster --journal`` coordinator
  mid-run and requires the resumed run to re-execute no more than the
  chunks that were in flight at the kill (plus one for a torn tail
  record) — the journal, not luck, bounds the recovery work.

Alongside throughput, the payload now records two quality dimensions
measured through :mod:`repro.obs` (``cache_hit_rate``,
``fastpath_fraction``) — derived from an untimed instrumented re-run of
both workloads, so the timed numbers stay telemetry-free.

Runs two ways:

* ``python benchmarks/bench_sweep_parallel.py --json BENCH_sweep.json``
  — the CI perf smoke target.  Exits non-zero if the speedup floors are
  missed or if serial witness-search throughput regressed more than 2x
  against the recorded baseline (``benchmarks/baselines/sweep_baseline
  .json``); refresh the baseline with ``--update-baseline``.
* ``pytest benchmarks/bench_sweep_parallel.py --benchmark-only`` — the
  same measurements under pytest-benchmark, like the other bench files.
"""

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import obs  # noqa: E402
from repro.core import (  # noqa: E402
    Domain,
    NO_CACHE,
    Operation,
    PredicateCache,
    PrimitiveFSM,
    VulnerabilityModel,
    attr,
    in_range,
    is_instance,
    length_le,
    less_equal,
    matches,
    not_contains,
    satisfies_all,
    sweep_models,
)
from repro.core import columnar  # noqa: E402
from repro.core import dist  # noqa: E402
from repro.core import plan  # noqa: E402
from repro.models import (  # noqa: E402
    all_extended_models,
    all_extended_pfsm_domains,
)

BASELINE_PATH = Path(__file__).resolve().parent / "baselines" / "sweep_baseline.json"

#: Regression gate: fail CI when serial witness-search throughput drops
#: below 1/REGRESSION_FACTOR of the recorded baseline.
REGRESSION_FACTOR = 2.0

#: Sweeps per backend-session measurement — the corpus is re-swept this
#: many times per "session" so the process backend's warm pool and
#: fingerprint memo have something to amortize over.
SESSION_REPEATS = 12

#: Tiling for the session corpus — heavier than the one-shot sweep
#: corpus so a single re-sweep costs real time on the thread backend.
SESSION_TILE_FACTOR = 5000

#: Acceptance floor for the backend-session comparison.
PROCESS_SESSION_FLOOR = 2.0

#: Models in the repeated-predicate plan corpus and the acceptance
#: floor for compiled-over-uncompiled sweep throughput.
PLAN_MODELS = 6
PLAN_FLOOR = 2.0

#: The columnar scenario (scenario E): numeric-heavy record corpus —
#: multi-field conjunctions, so the interval fast path cannot apply and
#: the compiled scalar scan is the best non-columnar engine.
COLUMNAR_MODELS = 4
COLUMNAR_ROWS = 60_000
COLUMNAR_NUMPY_FLOOR = 5.0
COLUMNAR_STDLIB_FLOOR = 1.5
#: Floor for the shared-memory sub-check: the per-task domain payload
#: shipped to pool workers must shrink at least this much.
SHM_PAYLOAD_FLOOR = 10.0

#: Scenario F: worker agents on the loopback fabric, and the relative
#: throughput floor against the local process backend (the fabric adds
#: framing + socket hops; it must stay within 20% on one machine).
CLUSTER_AGENTS = 2
CLUSTER_FLOOR = 0.8
#: Lease timeout for the reclaim-latency sub-stat (short, so the bench
#: measures the recovery path, not a production-tuned wait).
CLUSTER_LEASE_TIMEOUT = 1.0

#: Scenario G: the seeded fault plan for the faulted-throughput run —
#: a 1% socket-fault rate across the fabric — and the relative floor
#: against the fault-free cluster run on the same agents.
FAULTS_SPEC = "seed=7;cluster.send.drop:0.01;cluster.recv.delay:0.01@ms=2"
FAULTS_FLOOR = 0.7


def _witness_pfsm() -> PrimitiveFSM:
    return PrimitiveFSM(
        "p", "index", "x",
        spec_accepts=in_range(0, 100),
        impl_accepts=less_equal(100),
    )


def _scalar_hidden_witnesses(pfsm, domain, limit):
    """The seed's scalar witness scan, verbatim — the 'before' engine."""
    found = []
    for candidate in domain:
        if pfsm.takes_hidden_path(candidate):
            found.append(candidate)
            if len(found) >= limit:
                break
    return found


def _closed_form(pfsm) -> bool:
    return pfsm.spec_accepts.intervals is not None and (
        pfsm.impl_accepts is None or pfsm.impl_accepts.intervals is not None
    )


def _scaled_domains(models, domains, range_target=100_000, tile_factor=200):
    """Corpus-scale versions of the bundled pFSM domains.

    The bundled domains are probe sets of a handful of values — fine for
    correctness, useless for measuring a sweep engine.  This widens each
    ``range``-backed domain whose pFSM has closed-form predicates to
    ``range_target`` integers (the batch path answers arithmetically)
    and tiles every other probe set ``tile_factor``-fold by reference
    repetition — a corpus that re-probes the same objects over and over,
    exactly what the engine's per-scan identity memo and shared
    predicate cache absorb.  Both engines under comparison get the
    identical scaled corpus.
    """
    pfsms = {
        label: {pfsm.name: pfsm for _op, pfsm in model.all_pfsms()}
        for label, model in models.items()
    }
    scaled = {}
    for label, per_model in domains.items():
        scaled_model = {}
        for name, dom in per_model.items():
            backing = getattr(dom, "backing", None)
            pfsm = pfsms.get(label, {}).get(name)
            if (isinstance(backing, range) and len(backing)
                    and pfsm is not None and _closed_form(pfsm)):
                pad = max(0, (range_target - len(backing)) // 2)
                step = backing.step
                widened = range(backing.start - pad * step,
                                backing.stop + pad * step, step)
                scaled_model[name] = Domain(
                    widened, description=f"scaled({dom.description})"
                )
                continue
            items = list(dom)
            scaled_model[name] = Domain(
                items * tile_factor,
                description=f"tiled({dom.description})",
            )
        scaled[label] = scaled_model
    return scaled


def _naive_serial_sweep(models, domains, limit=5):
    """The seed's whole-corpus sweep: scalar scans, no cache, no batch."""
    findings = []
    for label, model in models.items():
        model_domains = domains.get(label, {})
        for operation, pfsm in model.all_pfsms():
            domain = model_domains.get(pfsm.name)
            if domain is None:
                continue
            witnesses = _scalar_hidden_witnesses(pfsm, domain, limit)
            if witnesses:
                findings.append((model.name, operation.name, pfsm.name,
                                 tuple(witnesses)))
    return findings


def _instrumented_metrics(models, domains, limit, witness_pfsm,
                          witness_domain):
    """The bench's quality dimensions, measured via the telemetry layer.

    Re-runs both workloads under an enabled registry — the closed-form
    hidden-witness search (which rides the interval fast path) and the
    corpus sweep twice, cold then warm, with a fresh
    :class:`PredicateCache` — then derives the cache hit rate and the
    interval fast-path coverage from the standard ``sweep.*`` counters.
    Untimed: the throughput comparisons all run with telemetry disabled.
    """
    registry = obs.get_registry()
    cache = PredicateCache()
    registry.reset()
    registry.enable()
    try:
        witness_pfsm.hidden_witnesses(witness_domain, limit=10**9)
        sweep_models(models, domains, workers=4, limit=limit, cache=cache)
        sweep_models(models, domains, workers=4, limit=limit, cache=cache)
        counters = registry.counters()
    finally:
        registry.disable()
        registry.reset()
    derived = obs.derived_metrics(counters)
    return {
        "cache_hit_rate": derived.get("cache_hit_rate", 0.0),
        "fastpath_fraction": derived.get("fastpath_fraction", 0.0),
        "compiled_fraction": derived.get("compiled_fraction", 0.0),
        "columnar_fraction": derived.get("columnar_fraction", 0.0),
        "counters": {
            name: value for name, value in sorted(counters.items())
            if name.startswith(("sweep.", "plan.", "columnar.", "dist.shm."))
        },
    }


def _findings_of(sweeps):
    return [
        (f.model_name, f.operation_name, f.pfsm_name, f.witnesses)
        for sweep in sweeps for f in sweep.findings
    ]


def _backend_session(models, domains, limit, mode, repeats=SESSION_REPEATS):
    """One analysis session: the corpus swept ``repeats`` times.

    Starts from a cold scheduler (``dist.reset()`` drops the warm pool
    and the fingerprint memo) so the process backend pays its full
    startup cost inside the measurement.
    """
    dist.reset()
    start = time.perf_counter()
    sweeps = None
    for _ in range(repeats):
        sweeps = sweep_models(models, domains, workers=4, limit=limit,
                              mode=mode)
    seconds = time.perf_counter() - start
    dist.shutdown_pool()
    return seconds, sweeps


def _resume_scenario(models, domains, limit):
    """Cold sweep recording to a JSONL store, then a resumed re-sweep.

    The scheduler memo is reset between the two runs so the warm run's
    reuse comes from the persisted store alone.
    """
    with tempfile.TemporaryDirectory() as tmp:
        store = str(Path(tmp) / "resume.jsonl")
        dist.reset()
        start = time.perf_counter()
        cold = sweep_models(models, domains, workers=4, limit=limit,
                            mode="thread", resume_from=store)
        cold_s = time.perf_counter() - start
        dist.reset()
        start = time.perf_counter()
        warm = sweep_models(models, domains, workers=4, limit=limit,
                            mode="thread", resume_from=store)
        warm_s = time.perf_counter() - start
        records = sum(1 for line in Path(store).read_text().splitlines()
                      if line.strip())
    assert _findings_of(warm) == _findings_of(cold), \
        "resumed sweep diverged from the cold sweep"
    return cold_s, warm_s, records


def _plan_corpus(tile=120):
    """The repeated-predicate corpus for the plan scenario.

    ``PLAN_MODELS`` models, two pFSMs each, whose specs are written the
    way validation predicates read naturally — sanity regexes first,
    cheap bound checks last.  Interpreted evaluation runs that source
    order, so it pays for two regex scans on every object; the compiler
    reorders leaves by estimated selectivity and cost, so the many
    malformed objects (over-long or ``%n``-bearing — most of the corpus)
    are rejected by a length or substring check before any regex runs.
    The specs also embed one shared guard sub-DAG, structurally
    identical across every model, so cross-task CSE judges it once per
    object per sweep.  Every domain object is a *distinct* string (no
    identity-memo shortcuts, no interval fast path): the engines must
    evaluate per object, which is exactly what the compiler accelerates.
    """
    base = ["GET /index.html", "%n%n" * 30, "a" * 200, "user=admin",
            ("%s" * 20) + "%n", "b" * 150, "x" * 90 + "%n", "c" * 300,
            "ok", "d" * 120 + "%n%n"]
    models, domains = {}, {}
    for k in range(PLAN_MODELS):
        def guard():
            return satisfies_all(
                matches(r"^[\x20-\x7e]*$"),          # printable ASCII
                matches(r"^[^%]*(?:%[ns][^%]*)*$"),  # only %n/%s escapes
                matches(r"^(?:[^=]*=?[^=]*)$"),      # at most one '='
                is_instance(str), length_le(64), not_contains("%n"))
        spec1 = satisfies_all(guard(), not_contains("%s"))
        spec2 = satisfies_all(guard(), matches(r"^[-/=A-Za-z0-9 .:]*$"))
        p1 = PrimitiveFSM("p1", "format string", "s", spec_accepts=spec1,
                          impl_accepts=length_le(250))
        p2 = PrimitiveFSM("p2", "parse request", "s", spec_accepts=spec2,
                          impl_accepts=length_le(220))
        label = f"plan-model-{k}"
        models[label] = VulnerabilityModel(
            label, [Operation("handle input", "s", [p1, p2])])
        corpus = [f"{k}:{i}:{item}"
                  for i in range(tile) for item in base]
        shared_domain = Domain(corpus, description=f"plan corpus {k}")
        domains[label] = {"p1": shared_domain, "p2": shared_domain}
    objects = PLAN_MODELS * 2 * len(base) * tile
    return models, domains, objects


def _plan_scenario(repeats=3):
    """Uncompiled vs compiled sweep over the repeated-predicate corpus.

    Both sides run the identical engine with a fresh
    :class:`PredicateCache`; the only variable is the planner.  The
    compiled side starts from a cold plan cache (``plan.reset()``), so
    compile time is inside the measurement.
    """
    models, domains, objects = _plan_corpus()
    limit = 10**9

    def uncompiled():
        with plan.disabled():
            return sweep_models(models, domains, workers=4, limit=limit,
                                cache=PredicateCache())

    def compiled():
        plan.reset()
        return sweep_models(models, domains, workers=4, limit=limit,
                            cache=PredicateCache())

    uncompiled_s, baseline = _best_of(uncompiled, repeats=repeats)
    compiled_s, sweeps = _best_of(compiled, repeats=repeats)
    assert _findings_of(sweeps) == _findings_of(baseline), \
        "compiled sweep diverged from the uncompiled engine"
    return {
        "models": PLAN_MODELS,
        "objects_per_sweep": objects,
        "uncompiled_s": uncompiled_s,
        "compiled_s": compiled_s,
        "speedup": (uncompiled_s / compiled_s
                    if compiled_s else float("inf")),
        "uncompiled_objs_per_s": objects / uncompiled_s,
        "compiled_objs_per_s": objects / compiled_s,
    }


def _columnar_corpus(rows=COLUMNAR_ROWS):
    """Scenario E: the numeric-heavy record corpus.

    Every pFSM checks a *conjunction over several record fields* —
    exactly the shape the interval fast path cannot answer (``attr``
    specs carry no intervals), so without the columnar engine these
    scans run the compiled scalar program per object.  The hidden set
    is deliberately tiny (a narrow ``size`` band that each spec rejects
    but the implementation accepts): the engines must sweep essentially
    the whole corpus, which is what a clean-bill-of-health audit over
    production-scale telemetry looks like.

    All models audit the *same* corpus — the common shape where several
    vulnerability models are swept over one telemetry capture.  The
    digest-keyed ``EncodingCache`` encodes the domain once and serves
    every model's kernel from the shared columns.
    """
    items = [{"size": (i * 37) % 10_000,
              "depth": (i * 11) % 128,
              "flags": (i * 13) % 300_000,
              "ttl": (i * 7) % 86_400,
              "name": "n" * (i % 9)}
             for i in range(rows)]
    corpus = Domain(items, description="record corpus")
    models, domains = {}, {}
    for k in range(COLUMNAR_MODELS):
        spec = satisfies_all(
            attr("size", in_range(0, 9949 - k)),
            attr("depth", in_range(0, 96)),
            attr("flags", in_range(0, 250_000)),
            attr("ttl", in_range(0, 86_400)),
            attr("name", length_le(6)))
        impl = satisfies_all(
            attr("size", less_equal(9960)),
            attr("depth", less_equal(96)),
            attr("flags", less_equal(250_000)),
            attr("ttl", less_equal(86_400)),
            attr("name", length_le(6)))
        pfsm = PrimitiveFSM("p1", "validate record", "r",
                            spec_accepts=spec, impl_accepts=impl)
        label = f"columnar-model-{k}"
        models[label] = VulnerabilityModel(
            label, [Operation("ingest record", "r", [pfsm])])
        domains[label] = {"p1": corpus}
    return models, domains, COLUMNAR_MODELS * rows


def _columnar_scenario(repeats=3):
    """Compiled scalar vs columnar sweep over the record corpus.

    Identical engine both sides; the only variable is the columnar
    strategy (``columnar.disabled()`` is the A/B switch).  The
    vectorized side starts from cold encodings every repeat — encoding
    time is inside the measurement.
    """
    models, domains, objects = _columnar_corpus()
    limit = 10**9

    def scalar():
        with columnar.disabled():
            return sweep_models(models, domains, workers=4, limit=limit,
                                cache=PredicateCache())

    def vectorized():
        columnar.encoding_cache().clear()
        columnar._DOMAIN_MEMO.clear()
        return sweep_models(models, domains, workers=4, limit=limit,
                            cache=PredicateCache())

    scalar_s, baseline = _best_of(scalar, repeats=repeats)
    vector_s, sweeps = _best_of(vectorized, repeats=repeats)
    assert _findings_of(sweeps) == _findings_of(baseline), \
        "columnar sweep diverged from the compiled scalar engine"
    backend = "numpy" if columnar.using_numpy() else "stdlib"
    return {
        "backend": backend,
        "models": COLUMNAR_MODELS,
        "objects_per_sweep": objects,
        "findings": len(_findings_of(sweeps)),
        "scalar_s": scalar_s,
        "columnar_s": vector_s,
        "speedup": scalar_s / vector_s if vector_s else float("inf"),
        "scalar_objs_per_s": objects / scalar_s,
        "columnar_objs_per_s": objects / vector_s,
        "floor": (COLUMNAR_NUMPY_FLOOR if backend == "numpy"
                  else COLUMNAR_STDLIB_FLOOR),
        "shm": _shm_payload_stats(),
    }


def _shm_payload_stats(rows=20_000):
    """The zero-copy sub-check: per-task payload bytes with and without
    shared-memory column shipping, measured through the dist counters."""
    if not columnar.shm_supported():
        return {"supported": False}
    models, domains, _objects = _columnar_corpus(rows=rows)
    label = next(iter(models))
    model = models[label]
    domain = domains[label]["p1"]
    pfsm = next(p for _op, p in model.all_pfsms())
    tasks = [(model.name, "ingest record", pfsm, domain, 5)] * 2
    original = len(dist._serialize_task(tasks[0]))
    registry = obs.get_registry()
    registry.reset()
    registry.enable()
    try:
        dist.reset()
        dist.run_tasks(tasks, 2, backend="process")
        counters = registry.counters()
    finally:
        registry.disable()
        registry.reset()
        dist.shutdown_pool()
    shipped_tasks = counters.get("dist.shm.tasks", 0)
    saved = counters.get("dist.shm.bytes_saved", 0)
    if not shipped_tasks:
        return {"supported": True, "tasks": 0}
    substituted = original - saved // shipped_tasks
    return {
        "supported": True,
        "tasks": shipped_tasks,
        "segments": counters.get("dist.shm.segments", 0),
        "bytes_shared": counters.get("dist.shm.bytes_shared", 0),
        "bytes_saved": saved,
        "task_payload_before": original,
        "task_payload_after": substituted,
        "payload_reduction": (original / substituted if substituted
                              else float("inf")),
    }


def _cluster_scenario(repeats=2):
    """Scenario F: loopback cluster fabric vs the local process backend.

    Both sides sweep the identical scaled corpus from a cold scheduler
    memo.  The cluster side runs one coordinator and
    ``CLUSTER_AGENTS`` worker agents in-process (loopback TCP, real
    framing, real leases) sharing the same warm pool the process
    backend uses — so the measured difference is the fabric overhead,
    not a different executor.
    """
    from repro.cluster import (
        ClusterCoordinator,
        ClusterWorker,
        coordinating,
    )

    models = all_extended_models()
    domains = _scaled_domains(models, all_extended_pfsm_domains())
    limit = 10**9

    def process_side():
        dist.clear_memo()
        return sweep_models(models, domains, workers=4, limit=limit,
                            mode="process")

    dist.reset()
    process_s, baseline = _best_of(process_side, repeats=repeats)

    dist.reset()
    with ClusterCoordinator() as coordinator, coordinating(coordinator):
        agents = [ClusterWorker(*coordinator.address, slots=2)
                  for _ in range(CLUSTER_AGENTS)]
        for agent in agents:
            agent.start()
        assert coordinator.wait_for_workers(CLUSTER_AGENTS, timeout=30.0)

        def cluster_side():
            dist.clear_memo()
            return sweep_models(models, domains, workers=4, limit=limit,
                                mode="cluster")

        cluster_s, sweeps = _best_of(cluster_side, repeats=repeats)
        for agent in agents:
            agent.stop()
        counters = dict(coordinator.snapshot()["counters"])
    assert _findings_of(sweeps) == _findings_of(baseline), \
        "cluster sweep diverged from the process backend"
    dist.shutdown_pool()
    return {
        "agents": CLUSTER_AGENTS,
        "process_s": process_s,
        "cluster_s": cluster_s,
        "relative_throughput": (process_s / cluster_s
                                if cluster_s else float("inf")),
        "floor": CLUSTER_FLOOR,
        "cluster_sweeps_per_s": 1.0 / cluster_s if cluster_s else 0.0,
        "chunks_completed": counters.get("chunks.completed", 0),
        "bytes_shipped": counters.get("bytes.shipped", 0),
        "bytes_received": counters.get("bytes.received", 0),
        "reclaim": _reclaim_latency_stat(),
    }


def _reclaim_latency_stat():
    """Worker-death recovery latency through the lease layer.

    A raw-socket worker claims a chunk and goes silent without closing
    its connection — the worst case for the coordinator, which cannot
    see an EOF and must wait out the lease.  The stat is claim-to-
    reclaim wall time; the sweep then completes inline (identical
    results), proving recovery, not just detection.
    """
    import json as _json
    import socket as _socket
    import threading

    from repro.cluster import ClusterCoordinator, coordinating
    from repro.cluster.protocol import encode_line, read_line
    from repro.core.sweep import _scan_task

    pfsm = PrimitiveFSM("p", "scan", "x", spec_accepts=in_range(0, 5),
                        impl_accepts=less_equal(10))
    tasks = [("model", f"op{i}", pfsm, Domain.integers(0, 50), 5)
             for i in range(4)]
    dist.reset()
    dist.clear_memo()
    with ClusterCoordinator(lease_timeout=CLUSTER_LEASE_TIMEOUT) as \
            coordinator, coordinating(coordinator):
        results = {}

        def sweep():
            results["got"] = dist.run_tasks(tasks, 2, backend="cluster")

        runner = threading.Thread(target=sweep)
        conn = _socket.create_connection(coordinator.address)
        reader = conn.makefile("rb")
        try:
            conn.sendall(encode_line({"op": "hello", "worker": "mute",
                                      "slots": 1}))
            read_line(reader)
            runner.start()
            claimed_at = None
            deadline = time.perf_counter() + 10.0
            while time.perf_counter() < deadline:
                conn.sendall(encode_line({"op": "claim",
                                          "worker": "mute"}))
                response = _json.loads(read_line(reader))
                if response.get("status") == "chunk":
                    claimed_at = time.perf_counter()
                    break
                time.sleep(0.01)
            assert claimed_at is not None, "mute worker never got a chunk"
            # Silence: no result, no heartbeat, connection held open.
            deadline = claimed_at + 10.0 * CLUSTER_LEASE_TIMEOUT + 5.0
            while coordinator.counter("chunks.reclaimed") < 1:
                assert time.perf_counter() < deadline, "reclaim never came"
                time.sleep(0.005)
            latency = time.perf_counter() - claimed_at
        finally:
            reader.close()
            conn.close()
        runner.join(timeout=30.0)
        assert not runner.is_alive(), "sweep did not recover"
    expected = [None if r is None else tuple(r.witnesses)
                for r in (_scan_task(t) for t in tasks)]
    got = [None if r is None else tuple(r.witnesses)
           for r in results["got"]]
    assert got == expected, "post-reclaim results diverged"
    return {
        "lease_timeout_s": CLUSTER_LEASE_TIMEOUT,
        "reclaim_latency_s": latency,
    }


def _faults_scenario(repeats=2):
    """Scenario G: the loopback cluster sweep under a seeded 1% socket
    fault rate vs the same sweep fault-free, plus the kill-and-resume
    sub-stat.  Both sides share one coordinator and agent set so the
    only variable is the installed fault plan."""
    from repro import faults
    from repro.cluster import (
        ClusterCoordinator,
        ClusterWorker,
        coordinating,
    )

    models = all_extended_models()
    domains = _scaled_domains(models, all_extended_pfsm_domains())
    limit = 10**9

    def cluster_side():
        dist.clear_memo()
        return sweep_models(models, domains, workers=4, limit=limit,
                            mode="cluster")

    dist.reset()
    previous = faults.install(None)
    try:
        with ClusterCoordinator() as coordinator, \
                coordinating(coordinator):
            agents = [ClusterWorker(*coordinator.address, slots=2)
                      for _ in range(CLUSTER_AGENTS)]
            for agent in agents:
                agent.start()
            assert coordinator.wait_for_workers(CLUSTER_AGENTS,
                                                timeout=30.0)
            clean_s, baseline = _best_of(cluster_side, repeats=repeats)
            plan_obj = faults.parse_spec(FAULTS_SPEC)
            with faults.injecting(plan_obj):
                faulted_s, sweeps = _best_of(cluster_side,
                                             repeats=repeats)
            for agent in agents:
                agent.stop()
    finally:
        faults.install(previous)
    assert _findings_of(sweeps) == _findings_of(baseline), \
        "faulted cluster sweep diverged from the fault-free run"
    dist.shutdown_pool()
    return {
        "fault_spec": FAULTS_SPEC,
        "fault_free_s": clean_s,
        "faulted_s": faulted_s,
        "relative_throughput": (clean_s / faulted_s
                                if faulted_s else float("inf")),
        "floor": FAULTS_FLOOR,
        "injected": plan_obj.snapshot()["injected"],
        "total_injected": plan_obj.snapshot()["total_injected"],
        "resume": _journal_resume_stat(),
    }


def _journal_resume_stat():
    """Kill-and-resume through the sweep journal.

    SIGKILLs a journaling cluster-sweep coordinator once its first
    chunk outcome is durably journaled, then re-runs with the same
    journal.  The stat is how much work the resume re-executed; the
    bound is the in-flight set at the kill plus one (a torn tail
    record re-executes its chunk).
    """
    import json as _json
    import os
    import signal
    import subprocess

    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    env.pop("REPRO_FAULTS", None)
    with tempfile.TemporaryDirectory() as scratch:
        journal = Path(scratch) / "journal.jsonl"

        def complete_records():
            if not journal.exists():
                return 0
            count = 0
            with open(journal, "rb") as handle:
                for line in handle:
                    if not line.endswith(b"\n"):
                        continue
                    try:
                        _json.loads(line)
                        count += 1
                    except ValueError:
                        pass
            return count

        victim = subprocess.Popen(
            [sys.executable, "-m", "repro", "sweep",
             "--backend", "cluster", "--listen", "127.0.0.1:0",
             "--journal", str(journal), "--json"],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        deadline = time.perf_counter() + 60.0
        while time.perf_counter() < deadline:
            if complete_records() >= 1 or victim.poll() is not None:
                break
            time.sleep(0.02)
        killed = victim.poll() is None
        if killed:
            os.kill(victim.pid, signal.SIGKILL)
        victim.wait(timeout=60)
        journaled_at_kill = complete_records()

        resumed = subprocess.run(
            [sys.executable, "-m", "repro", "sweep",
             "--backend", "cluster", "--listen", "127.0.0.1:0",
             "--journal", str(journal), "--json"],
            env=env, capture_output=True, text=True, timeout=300)
        assert resumed.returncode == 0, resumed.stderr
        cluster = _json.loads(resumed.stdout)["cluster"]
        chunks_resumed = cluster.get("chunks_resumed", 0)
        re_executed = cluster.get("journal_appends", 0)
        total = chunks_resumed + re_executed
        return {
            "victim_killed": killed,
            "total_chunks": total,
            "journaled_at_kill": journaled_at_kill,
            "chunks_resumed": chunks_resumed,
            "re_executed": re_executed,
            # In-flight at the kill, plus one for a possible torn tail.
            "re_execution_bound": max(0, total - journaled_at_kill) + 1,
        }


def _best_of(fn, repeats=5):
    """(best wall-clock seconds, last result) over ``repeats`` runs."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def measure(witness_repeats=5, sweep_repeats=3):
    """Run both comparisons; returns the BENCH_sweep payload dict."""
    pfsm = _witness_pfsm()
    domain = Domain.integers(-10000, 10000)

    scalar_s, scalar_found = _best_of(
        lambda: _scalar_hidden_witnesses(pfsm, domain, 10**9),
        repeats=witness_repeats,
    )
    batch_s, batch_found = _best_of(
        lambda: pfsm.hidden_witnesses(domain, limit=10**9),
        repeats=witness_repeats,
    )
    assert batch_found == scalar_found, "batch path diverged from scalar scan"
    assert len(batch_found) == 10000

    models = all_extended_models()
    domains = _scaled_domains(models, all_extended_pfsm_domains())
    # Full witness enumeration: with a truncating limit both engines
    # early-exit after a handful of hits and nothing is measured.
    limit = 10**9
    serial_s, serial_findings = _best_of(
        lambda: _naive_serial_sweep(models, domains, limit=limit),
        repeats=sweep_repeats,
    )
    parallel_s, sweeps = _best_of(
        lambda: sweep_models(models, domains, workers=4, limit=limit),
        repeats=sweep_repeats,
    )
    parallel_findings = _findings_of(sweeps)
    assert parallel_findings == serial_findings, \
        "parallel sweep diverged from the serial baseline"

    session_domains = _scaled_domains(
        models, all_extended_pfsm_domains(),
        tile_factor=SESSION_TILE_FACTOR,
    )
    thread_session_s, thread_sweeps = _backend_session(
        models, session_domains, limit, mode="thread")
    process_session_s, process_sweeps = _backend_session(
        models, session_domains, limit, mode="process")
    assert _findings_of(process_sweeps) == _findings_of(thread_sweeps), \
        "process-backend sweep diverged from the thread backend"

    resume_cold_s, resume_warm_s, resume_records = _resume_scenario(
        models, domains, limit)

    plan_stats = _plan_scenario()
    columnar_stats = _columnar_scenario()
    cluster_stats = _cluster_scenario()
    faults_stats = _faults_scenario()

    quality = _instrumented_metrics(models, domains, limit, pfsm, domain)

    return {
        "cache_hit_rate": quality["cache_hit_rate"],
        "fastpath_fraction": quality["fastpath_fraction"],
        "compiled_fraction": quality["compiled_fraction"],
        "columnar_fraction": quality["columnar_fraction"],
        "observability": quality,
        "hidden_witness_search": {
            "domain_size": len(domain),
            "witnesses": len(batch_found),
            "scalar_s": scalar_s,
            "batch_s": batch_s,
            "speedup": scalar_s / batch_s if batch_s else float("inf"),
            "serial_throughput_objs_per_s": len(domain) / scalar_s,
        },
        "model_sweep": {
            "models": len(models),
            "findings": len(parallel_findings),
            "workers": 4,
            "serial_s": serial_s,
            "parallel_s": parallel_s,
            "speedup": serial_s / parallel_s if parallel_s else float("inf"),
        },
        "backend_session": {
            "repeats": SESSION_REPEATS,
            "workers": 4,
            "thread_s": thread_session_s,
            "process_s": process_session_s,
            "speedup": (thread_session_s / process_session_s
                        if process_session_s else float("inf")),
            "thread_sweeps_per_s": SESSION_REPEATS / thread_session_s,
            "process_sweeps_per_s": SESSION_REPEATS / process_session_s,
        },
        "resume": {
            "store_records": resume_records,
            "cold_s": resume_cold_s,
            "warm_s": resume_warm_s,
            "speedup": (resume_cold_s / resume_warm_s
                        if resume_warm_s else float("inf")),
        },
        "plan": plan_stats,
        "columnar": columnar_stats,
        "cluster": cluster_stats,
        "faults": faults_stats,
    }


def check(payload, update_baseline=False):
    """Enforce the acceptance floors; returns a list of failure strings."""
    failures = []
    witness = payload["hidden_witness_search"]
    sweep = payload["model_sweep"]
    if witness["speedup"] < 5.0:
        failures.append(
            f"hidden-witness batch path only {witness['speedup']:.1f}x "
            f"over scalar (need >=5x)"
        )
    if sweep["parallel_s"] >= sweep["serial_s"]:
        failures.append(
            f"sweep_models(workers=4) ({sweep['parallel_s']:.4f}s) did not "
            f"beat the serial baseline ({sweep['serial_s']:.4f}s)"
        )
    session = payload["backend_session"]
    if session["speedup"] < PROCESS_SESSION_FLOOR:
        failures.append(
            f"process-backend session only {session['speedup']:.2f}x over "
            f"the thread backend (need >={PROCESS_SESSION_FLOOR}x at "
            f"{session['workers']} workers)"
        )
    resume = payload["resume"]
    if resume["warm_s"] >= resume["cold_s"]:
        failures.append(
            f"resumed sweep ({resume['warm_s']:.4f}s) did not beat the "
            f"cold sweep ({resume['cold_s']:.4f}s)"
        )
    plan_stats = payload["plan"]
    if plan_stats["speedup"] < PLAN_FLOOR:
        failures.append(
            f"compiled sweep only {plan_stats['speedup']:.2f}x over the "
            f"uncompiled path (need >={PLAN_FLOOR}x)"
        )
    columnar_stats = payload["columnar"]
    if columnar_stats["speedup"] < columnar_stats["floor"]:
        failures.append(
            f"columnar sweep ({columnar_stats['backend']}) only "
            f"{columnar_stats['speedup']:.2f}x over the compiled scalar "
            f"path (need >={columnar_stats['floor']}x)"
        )
    shm = columnar_stats["shm"]
    if shm.get("tasks"):
        if shm["payload_reduction"] < SHM_PAYLOAD_FLOOR:
            failures.append(
                f"shared-memory task payload only shrank "
                f"{shm['payload_reduction']:.1f}x "
                f"(need >={SHM_PAYLOAD_FLOOR}x)"
            )
    cluster_stats = payload["cluster"]
    if cluster_stats["relative_throughput"] < cluster_stats["floor"]:
        failures.append(
            f"cluster sweep only {cluster_stats['relative_throughput']:.2f}x "
            f"of process-backend throughput on loopback "
            f"(need >={cluster_stats['floor']}x)"
        )
    reclaim = cluster_stats["reclaim"]
    # Recovery must be bounded by the lease plus scheduler slack — a
    # reclaim that takes several lease lifetimes means the reaper or
    # the heartbeat contract regressed.
    if reclaim["reclaim_latency_s"] > 3.0 * reclaim["lease_timeout_s"]:
        failures.append(
            f"worker-death reclaim took {reclaim['reclaim_latency_s']:.2f}s "
            f"against a {reclaim['lease_timeout_s']:.1f}s lease "
            f"(need <=3x the lease timeout)"
        )
    faults_stats = payload["faults"]
    if faults_stats["relative_throughput"] < faults_stats["floor"]:
        failures.append(
            f"faulted cluster sweep only "
            f"{faults_stats['relative_throughput']:.2f}x of fault-free "
            f"throughput under {faults_stats['fault_spec']!r} "
            f"(need >={faults_stats['floor']}x)"
        )
    journal_stat = faults_stats["resume"]
    if journal_stat["re_executed"] > journal_stat["re_execution_bound"]:
        failures.append(
            f"journal resume re-executed {journal_stat['re_executed']} "
            f"chunk(s) with only "
            f"{journal_stat['total_chunks'] - journal_stat['journaled_at_kill']} "
            f"in flight at the kill (bound "
            f"{journal_stat['re_execution_bound']})"
        )

    throughput = witness["serial_throughput_objs_per_s"]
    session_throughput = session["process_sweeps_per_s"]
    plan_throughput = plan_stats["compiled_objs_per_s"]
    columnar_throughput = columnar_stats["columnar_objs_per_s"]
    cluster_throughput = cluster_stats["cluster_sweeps_per_s"]
    if update_baseline or not BASELINE_PATH.exists():
        BASELINE_PATH.parent.mkdir(parents=True, exist_ok=True)
        BASELINE_PATH.write_text(json.dumps(
            {
                "serial_witness_throughput_objs_per_s": throughput,
                "process_session_sweeps_per_s": session_throughput,
                "plan_compiled_objs_per_s": plan_throughput,
                "columnar_objs_per_s": columnar_throughput,
                "columnar_backend": columnar_stats["backend"],
                "cluster_sweeps_per_s": cluster_throughput,
            }, indent=2,
        ) + "\n")
        print(f"baseline recorded: {throughput:,.0f} objs/s, "
              f"{session_throughput:,.2f} process-session sweeps/s, "
              f"{plan_throughput:,.0f} compiled objs/s, "
              f"{columnar_throughput:,.0f} columnar objs/s, "
              f"{cluster_throughput:,.2f} cluster sweeps/s "
              f"-> {BASELINE_PATH}")
    else:
        baseline = json.loads(BASELINE_PATH.read_text())
        floor = baseline["serial_witness_throughput_objs_per_s"] / REGRESSION_FACTOR
        if throughput < floor:
            failures.append(
                f"serial witness-search throughput regressed: "
                f"{throughput:,.0f} objs/s < floor {floor:,.0f} objs/s "
                f"(baseline / {REGRESSION_FACTOR})"
            )
        recorded = baseline.get("process_session_sweeps_per_s")
        if recorded is not None:
            floor = recorded / REGRESSION_FACTOR
            if session_throughput < floor:
                failures.append(
                    f"process-session throughput regressed: "
                    f"{session_throughput:,.2f} sweeps/s < floor "
                    f"{floor:,.2f} sweeps/s (baseline / {REGRESSION_FACTOR})"
                )
        recorded = baseline.get("plan_compiled_objs_per_s")
        if recorded is not None:
            floor = recorded / REGRESSION_FACTOR
            if plan_throughput < floor:
                failures.append(
                    f"compiled-sweep throughput regressed: "
                    f"{plan_throughput:,.0f} objs/s < floor "
                    f"{floor:,.0f} objs/s (baseline / {REGRESSION_FACTOR})"
                )
        recorded = baseline.get("columnar_objs_per_s")
        # Only gate like-for-like: a stdlib-fallback run is not a
        # regression against a numpy-recorded baseline.
        if recorded is not None and \
                baseline.get("columnar_backend") == columnar_stats["backend"]:
            floor = recorded / REGRESSION_FACTOR
            if columnar_throughput < floor:
                failures.append(
                    f"columnar-sweep throughput regressed: "
                    f"{columnar_throughput:,.0f} objs/s < floor "
                    f"{floor:,.0f} objs/s (baseline / {REGRESSION_FACTOR})"
                )
        recorded = baseline.get("cluster_sweeps_per_s")
        if recorded is not None:
            floor = recorded / REGRESSION_FACTOR
            if cluster_throughput < floor:
                failures.append(
                    f"cluster-sweep throughput regressed: "
                    f"{cluster_throughput:,.2f} sweeps/s < floor "
                    f"{floor:,.2f} sweeps/s (baseline / {REGRESSION_FACTOR})"
                )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the before/after payload here")
    parser.add_argument("--update-baseline", action="store_true",
                        help="re-record the serial-throughput baseline")
    args = parser.parse_args(argv)

    payload = measure()
    witness, sweep = payload["hidden_witness_search"], payload["model_sweep"]
    print(f"hidden-witness search over {witness['domain_size']:,} objects: "
          f"scalar {witness['scalar_s']:.4f}s, batch {witness['batch_s']:.6f}s "
          f"({witness['speedup']:.0f}x)")
    print(f"sweep of {sweep['models']} models: serial {sweep['serial_s']:.4f}s, "
          f"workers=4 {sweep['parallel_s']:.4f}s ({sweep['speedup']:.1f}x)")
    session = payload["backend_session"]
    print(f"session of {session['repeats']} corpus sweeps: "
          f"thread {session['thread_s']:.4f}s, "
          f"process {session['process_s']:.4f}s "
          f"({session['speedup']:.1f}x)")
    resume = payload["resume"]
    print(f"resume from a {resume['store_records']}-record store: "
          f"cold {resume['cold_s']:.4f}s, warm {resume['warm_s']:.4f}s "
          f"({resume['speedup']:.1f}x)")
    plan_stats = payload["plan"]
    print(f"plan corpus of {plan_stats['models']} models x "
          f"{plan_stats['objects_per_sweep']:,} objects: "
          f"uncompiled {plan_stats['uncompiled_s']:.4f}s, "
          f"compiled {plan_stats['compiled_s']:.4f}s "
          f"({plan_stats['speedup']:.1f}x)")
    columnar_stats = payload["columnar"]
    print(f"columnar corpus of {columnar_stats['models']} models x "
          f"{columnar_stats['objects_per_sweep']:,} records "
          f"({columnar_stats['backend']}): "
          f"scalar {columnar_stats['scalar_s']:.4f}s, "
          f"columnar {columnar_stats['columnar_s']:.4f}s "
          f"({columnar_stats['speedup']:.1f}x)")
    shm = columnar_stats["shm"]
    if shm.get("tasks"):
        print(f"shared-memory shipping: task payload "
              f"{shm['task_payload_before']:,}B -> "
              f"{shm['task_payload_after']:,}B "
              f"({shm['payload_reduction']:.0f}x smaller, "
              f"{shm['segments']} segment(s))")
    cluster_stats = payload["cluster"]
    print(f"cluster fabric ({cluster_stats['agents']} loopback agents): "
          f"process {cluster_stats['process_s']:.4f}s, "
          f"cluster {cluster_stats['cluster_s']:.4f}s "
          f"({cluster_stats['relative_throughput']:.2f}x relative, "
          f"{cluster_stats['chunks_completed']} chunks, "
          f"{cluster_stats['bytes_shipped']:,}B shipped); "
          f"worker-death reclaim in "
          f"{cluster_stats['reclaim']['reclaim_latency_s']:.2f}s "
          f"({cluster_stats['reclaim']['lease_timeout_s']:.1f}s lease)")
    faults_stats = payload["faults"]
    journal_stat = faults_stats["resume"]
    print(f"fault injection ({faults_stats['fault_spec']}): "
          f"fault-free {faults_stats['fault_free_s']:.4f}s, "
          f"faulted {faults_stats['faulted_s']:.4f}s "
          f"({faults_stats['relative_throughput']:.2f}x relative, "
          f"{faults_stats['total_injected']} injection(s)); "
          f"journal resume re-executed {journal_stat['re_executed']} of "
          f"{journal_stat['total_chunks']} chunk(s) "
          f"({journal_stat['journaled_at_kill']} journaled at the kill)")
    print(f"quality: cache hit rate {payload['cache_hit_rate']:.1%}, "
          f"interval fast-path coverage {payload['fastpath_fraction']:.1%}, "
          f"compiled-program coverage {payload['compiled_fraction']:.1%}, "
          f"columnar coverage {payload['columnar_fraction']:.1%}")

    failures = check(payload, update_baseline=args.update_baseline)
    if args.json:
        Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.json}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


# -- pytest-benchmark entry points (parity with the other bench files) -----

def test_hidden_witness_batch_vs_scalar(benchmark):
    """Closed-form witness search over the 20k-element integer domain."""
    pfsm = _witness_pfsm()
    domain = Domain.integers(-10000, 10000)
    count = benchmark(lambda: len(pfsm.hidden_witnesses(domain, limit=10**9)))
    assert count == 10000


def test_sweep_models_parallel(benchmark):
    """Whole-corpus sweep through the parallel batched engine."""
    models = all_extended_models()
    domains = _scaled_domains(models, all_extended_pfsm_domains())
    sweeps = benchmark(
        lambda: sweep_models(models, domains, workers=4, limit=10**9)
    )
    assert sum(len(s.findings) for s in sweeps) > 0


def test_process_backend_session(benchmark):
    """Repeated corpus sweep on the process backend (warm pool + memo)."""
    models = all_extended_models()
    domains = _scaled_domains(models, all_extended_pfsm_domains())

    def session():
        seconds, sweeps = _backend_session(models, domains, 10**9,
                                           mode="process", repeats=3)
        return sweeps

    sweeps = benchmark.pedantic(session, rounds=1, iterations=1) \
        if hasattr(benchmark, "pedantic") else benchmark(session)
    assert sum(len(s.findings) for s in sweeps) > 0


def test_compiled_sweep_beats_uncompiled(benchmark):
    """The compiled single-pass scan over the repeated-predicate corpus."""
    models, domains, _objects = _plan_corpus()

    def compiled():
        plan.reset()
        return sweep_models(models, domains, workers=4, limit=10**9,
                            cache=PredicateCache())

    sweeps = benchmark.pedantic(compiled, rounds=1, iterations=1) \
        if hasattr(benchmark, "pedantic") else benchmark(compiled)
    assert sum(len(s.findings) for s in sweeps) > 0


def test_columnar_sweep_beats_compiled_scalar(benchmark):
    """The columnar mask pass over the numeric-heavy record corpus."""
    models, domains, _objects = _columnar_corpus(rows=20_000)

    def vectorized():
        columnar.encoding_cache().clear()
        return sweep_models(models, domains, workers=4, limit=10**9,
                            cache=PredicateCache())

    sweeps = benchmark.pedantic(vectorized, rounds=1, iterations=1) \
        if hasattr(benchmark, "pedantic") else benchmark(vectorized)
    assert sum(len(s.findings) for s in sweeps) > 0


def test_engine_beats_naive_serial_baseline():
    """The acceptance floors, runnable as a plain pytest check."""
    payload = measure(witness_repeats=3, sweep_repeats=2)
    witness, sweep = payload["hidden_witness_search"], payload["model_sweep"]
    assert witness["speedup"] >= 5.0, witness
    assert sweep["parallel_s"] < sweep["serial_s"], sweep
    session = payload["backend_session"]
    assert session["speedup"] >= PROCESS_SESSION_FLOOR, session
    resume = payload["resume"]
    assert resume["warm_s"] < resume["cold_s"], resume
    assert payload["plan"]["speedup"] >= PLAN_FLOOR, payload["plan"]
    columnar_stats = payload["columnar"]
    assert columnar_stats["speedup"] >= columnar_stats["floor"], \
        columnar_stats


if __name__ == "__main__":
    sys.exit(main())
