"""Figure 6: Solaris rwall arbitrary file corruption — two-operation
cascade over the simulated filesystem.

Reproduced shape: a regular user writes "../etc/passwd" into the
world-writable /etc/utmp (pFSM1's hidden path); the daemon, lacking a
terminal-type check (pFSM2's hidden path), writes the broadcast into
/etc/passwd.  Fixing either operation alone forecloses the exploit
(Lemma part 2).
"""

from conftest import print_table

from repro.apps import (
    RwallDaemon,
    RwallVariant,
    add_utmp_entry,
    make_rwall_world,
    passwd_corrupted,
)
from repro.models import rwall_model
from repro.osmodel import User

_MESSAGE = b"attacker::0:0::/:/bin/sh\n"


def test_figure6_model_traversal(benchmark):
    """Traverse the two-operation cascade with the malicious entry."""
    model = rwall_model.build_model()
    exploit = rwall_model.exploit_input()

    result = benchmark(lambda: model.run(exploit))
    assert result.compromised
    assert result.hidden_path_count == 2
    print_table("Figure 6 — exploit trace (reproduced)",
                result.trace.to_text().splitlines())


def test_figure6_executable_corruption(benchmark):
    """The daemon really writes the message into /etc/passwd."""

    def full_chain():
        world = make_rwall_world(RwallVariant.VULNERABLE)
        mallory = User.regular("mallory", 1001)
        assert add_utmp_entry(world, mallory, "../etc/passwd")
        report = RwallDaemon(world).broadcast(_MESSAGE)
        return world, report

    world, report = benchmark(full_chain)
    assert report.wrote_non_terminal
    assert passwd_corrupted(world, _MESSAGE)
    print_table(
        "Figure 6 — executable consequence",
        [f"delivered to: {', '.join(report.delivered_to)}",
         "/etc/passwd now contains the attacker's entry"],
    )


def test_figure6_lemma_part2_either_fix(benchmark):
    """Securing either operation alone foils the exploit."""

    def fix_matrix():
        results = {}
        for variant, label in [
            (RwallVariant.VULNERABLE, "vulnerable"),
            (RwallVariant.PATCHED_PERMS, "utmp root-only (op 1 fixed)"),
            (RwallVariant.PATCHED_TYPECHECK, "type check (op 2 fixed)"),
        ]:
            world = make_rwall_world(variant)
            mallory = User.regular("mallory", 1001)
            add_utmp_entry(world, mallory, "../etc/passwd")
            RwallDaemon(world).broadcast(_MESSAGE)
            results[label] = passwd_corrupted(world, _MESSAGE)
        return results

    results = benchmark(fix_matrix)
    assert results == {
        "vulnerable": True,
        "utmp root-only (op 1 fixed)": False,
        "type check (op 2 fixed)": False,
    }
    print_table(
        "Figure 6 — Lemma part 2 (either operation suffices)",
        (f"{label:<30} corrupted={'YES' if hit else 'no'}"
         for label, hit in results.items()),
    )


def test_figure6_terminals_still_served(benchmark):
    """The type-check fix does not break legitimate broadcasts."""

    def broadcast():
        world = make_rwall_world(RwallVariant.PATCHED_TYPECHECK)
        return RwallDaemon(world).broadcast(b"system going down\n")

    report = benchmark(broadcast)
    assert set(report.delivered_to) == {"/dev/pts/25", "/dev/pts/26"}
