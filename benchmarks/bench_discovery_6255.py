"""Section 5.1's headline result: discovering Bugtraq #6255 while
modeling the known NULL HTTPD vulnerability.

The workflow: derive the elementary-activity predicates from the known
vulnerability's model, probe the *fixed* 0.5.1 implementation against
them, and find that pFSM2 ("length(input) <= size(PostData)") still has
no IMPL_REJ — the recv loop's ``||``-for-``&&`` logic error.
"""

from conftest import print_table

from repro.apps import NullHttpd, NullHttpdVariant, RECV_CHUNK, craft_unlink_body
from repro.core import DiscoveryEngine, Domain, Predicate
from repro.memory import ControlFlowHijack


def _spec_content_len():
    return Predicate(lambda n: n >= 0, "contentLen >= 0")


def _spec_fits():
    return Predicate(
        lambda r: r["input_len"] <= r["content_len"] + 1024,
        "length(input) <= size(PostData)",
    )


def _probe_content_len(content_len):
    app = NullHttpd(NullHttpdVariant.V0_5_1)
    return app.handle_post(content_len, b"x" * max(content_len, 0)).accepted


def _probe_copy(request):
    app = NullHttpd(NullHttpdVariant.V0_5_1)
    outcome = app.handle_post(request["content_len"],
                              b"x" * request["input_len"])
    return outcome.accepted and outcome.bytes_copied == request["input_len"]


def _domains():
    return {
        "pFSM1": Domain.of(-800, -1, 0, 100, 4096),
        "pFSM2": Domain.records(
            content_len=Domain.of(0, 100, 500),
            input_len=Domain.of(0, 100, 1024, 1500, 2 * RECV_CHUNK + 200),
        ),
    }


def test_discovery_sweep_finds_6255(benchmark):
    """The probed sweep over 0.5.1: pFSM1 clean, pFSM2 violated."""
    engine = DiscoveryEngine(known_vulnerable=["pFSM1"])

    def sweep():
        return engine.sweep_probed(
            "Read postdata from socket to PostData",
            [
                ("pFSM1", "validate contentLen", _spec_content_len(),
                 _probe_content_len),
                ("pFSM2", "terminate the copy at the buffer size",
                 _spec_fits(), _probe_copy),
            ],
            _domains(),
        )

    findings = benchmark(sweep)
    names = {f.pfsm_name for f in findings}
    assert names == {"pFSM2"}  # the fixed check is clean; the copy is not
    new = DiscoveryEngine.new_findings(findings)
    assert len(new) == 1
    print_table(
        "Section 5.1 — discovery sweep over NULL HTTPD 0.5.1 (reproduced)",
        [str(f) for f in findings]
        + [f"witness request: {new[0].witnesses[0]}"],
    )


def test_discovered_vulnerability_is_exploitable(benchmark):
    """The discovered hidden path carries a working exploit: correct
    contentLen, over-long body, GOT(free) hijack — Bugtraq #6255."""

    def exploit():
        app = NullHttpd(NullHttpdVariant.V0_5_1)
        body = craft_unlink_body(app, content_len=100)
        outcome = app.handle_post(100, body)
        assert outcome.accepted and outcome.overflowed
        app.free_post_data()
        try:
            app.call_free()
            return None
        except ControlFlowHijack as hijack:
            return app, hijack

    app, hijack = benchmark(exploit)
    assert app.process.is_mcode(hijack.target)
    print_table(
        "Bugtraq #6255 — executable confirmation",
        [f"0.5.1 hijacked with valid Content-Length: "
         f"free() -> Mcode at {hijack.target:#x}"],
    )


def test_fix_verified_by_same_sweep(benchmark):
    """Applying the && fix and re-running the sweep yields no findings —
    the verification loop a maintainer would run."""

    def probe_fixed(request):
        app = NullHttpd(NullHttpdVariant.FIXED)
        outcome = app.handle_post(request["content_len"],
                                  b"x" * request["input_len"])
        return outcome.accepted and outcome.bytes_copied == request["input_len"]

    engine = DiscoveryEngine()

    def sweep():
        return engine.sweep_probed(
            "read", [("pFSM2", "copy", _spec_fits(), probe_fixed)],
            _domains(),
        )

    assert benchmark(sweep) == []
