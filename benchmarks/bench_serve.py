"""Benchmark of the ``repro.serve`` analysis service.

Four scenarios, each asserting the serving contract from the issue and
all recorded to ``BENCH_serve.json`` so the BENCH_* trajectory keeps
recording:

* **throughput** — 8 concurrent clients replay a duplicate-heavy
  request mix against one warm server (a synchronized cold burst first,
  so identical requests are genuinely in flight together).  Acceptance:
  every response correct (spot-checked against a direct
  ``sweep_model``), coalesce rate > 0, cache hit rate reported, and
  client-side p50/p95 latency recorded.
* **overload** — a deliberately tiny admission queue (depth 2, one
  request per dispatch) behind a slowed engine, hit by 10 clients with
  30 distinct requests.  Acceptance: queue overflow yields explicit
  ``overloaded`` responses, *every* request gets an answer, and shed
  responses return fast (admission control refuses in microseconds —
  it never queues the refusal behind the backlog).
* **tracing overhead** — cold compute requests (distinct model × limit
  pairs, process-wide result tiers cleared so every run pays the full
  pipeline) replayed against fresh untraced and traced servers, plus
  an all-cache-hit replay for the fixed per-request tracer cost.
  Acceptance: traced end-to-end overhead under 5%, and every traced
  request reassembled into a retained trace.
* **drain** — a real ``repro serve`` subprocess under continuous load
  from 6 clients receives SIGTERM mid-flight.  Acceptance: zero dropped
  responses — every request sent is answered (``ok`` or an explicit
  ``draining`` refusal), and the server exits 0 after a clean drain.

Run: ``python benchmarks/bench_serve.py --json BENCH_serve.json`` (the
CI serve-smoke target; exits non-zero if any acceptance check fails).
"""

import argparse
import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.sweep import sweep_model  # noqa: E402
from repro.models import all_extended_models  # noqa: E402
from repro.models import all_extended_pfsm_domains  # noqa: E402
from repro.serve import (  # noqa: E402
    MODEL_KEYS,
    ServeClient,
    ServeConfig,
    ServerThread,
    wait_until_ready,
)

CLIENTS = 8
REQUESTS_PER_CLIENT = 25
#: Duplicate-heavy replay mix: four models, two limits, so 8 distinct
#: requests cover 200 total — the shape of a dashboard polling a corpus.
MIX = [("sendmail", 5), ("nullhttpd", 5), ("sendmail", 3), ("iis", 5),
       ("sendmail", 5), ("xterm", 3), ("nullhttpd", 5), ("sendmail", 5)]


def _percentile(samples, pct):
    data = sorted(samples)
    if not data:
        return None
    rank = max(1, int(round(pct / 100.0 * len(data) + 0.5)))
    return data[min(rank, len(data)) - 1]


def _reference_response():
    """What the engine says directly (no server) about the cold-burst
    query — the correctness oracle for scenario A."""
    label = MODEL_KEYS["sendmail"]
    model = all_extended_models()[label]
    domains = all_extended_pfsm_domains()[label]
    swept = sweep_model(model, domains, limit=5)
    return [(f.pfsm_name, len(f.witnesses)) for f in swept.findings]


def bench_throughput():
    """Scenario A: concurrent duplicate-heavy replay against one server."""
    store = tempfile.NamedTemporaryFile(suffix=".jsonl", delete=False)
    store.close()
    os.unlink(store.name)
    handle = ServerThread(ServeConfig(port=0, store_path=store.name)).start()
    latencies = []
    latency_lock = threading.Lock()
    errors = []
    try:
        # Cold synchronized burst: 8 identical queries in flight at
        # once — the single-flight path must collapse them to one
        # engine dispatch.
        barrier = threading.Barrier(CLIENTS)
        burst = []

        def cold(slot):
            with ServeClient(handle.host, handle.port) as client:
                barrier.wait()
                burst.append(client.query("sendmail", limit=5))

        threads = [threading.Thread(target=cold, args=(slot,))
                   for slot in range(CLIENTS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        coalesced_burst = sum(1 for r in burst if r.get("coalesced"))

        reference = _reference_response()
        for response in burst:
            got = [(f["pfsm"], len(f["witnesses"]))
                   for f in response["findings"]]
            if response["status"] != "ok" or got != reference:
                errors.append(f"burst mismatch: {response}")

        # Warm replay: every client walks the mix from its own offset,
        # so duplicates overlap across clients and across time.
        def replay(slot):
            with ServeClient(handle.host, handle.port) as client:
                for i in range(REQUESTS_PER_CLIENT):
                    model, limit = MIX[(slot + i) % len(MIX)]
                    started = time.perf_counter()
                    response = client.query(model, limit=limit)
                    elapsed = time.perf_counter() - started
                    if response["status"] != "ok":
                        errors.append(f"replay {model}: {response}")
                    with latency_lock:
                        latencies.append(elapsed)

        started = time.perf_counter()
        threads = [threading.Thread(target=replay, args=(slot,))
                   for slot in range(CLIENTS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - started

        with ServeClient(handle.host, handle.port) as client:
            metrics = client.metrics()
    finally:
        handle.shutdown()
        if os.path.exists(store.name):
            os.unlink(store.name)

    requests = CLIENTS * REQUESTS_PER_CLIENT
    return {
        "clients": CLIENTS,
        "requests": requests + CLIENTS,  # replay + cold burst
        "distinct_requests": len(set(MIX)) + 1,
        "elapsed_s": round(elapsed, 4),
        "rps": round(requests / elapsed, 1),
        "latency_ms": {
            "p50": round(_percentile(latencies, 50) * 1000, 3),
            "p95": round(_percentile(latencies, 95) * 1000, 3),
            "max": round(max(latencies) * 1000, 3),
        },
        "server_latency_ms": metrics["latency"],
        "coalesced_in_cold_burst": coalesced_burst,
        "coalesce_rate": round(metrics["derived"]["coalesce_rate"], 4),
        "request_cache_hit_rate": round(
            metrics["derived"]["request_cache_hit_rate"], 4),
        "task_cache_hit_rate": round(
            metrics["derived"]["task_cache_hit_rate"], 4),
        "store_keys_flushed": metrics["store_keys"],
        "errors": errors,
    }


def bench_overload():
    """Scenario B: a tiny queue behind a slow engine must shed, answer
    everything, and keep refusals fast."""
    handle = ServerThread(ServeConfig(port=0, max_depth=2, max_batch=1,
                                      batch_window=0.005)).start()
    # Slow the engine (not the event loop) so the backlog outlives the
    # producers: admission control, not compute speed, is under test.
    original = handle.server.batcher._compute_fn

    def slowed(tasks, keys):
        time.sleep(0.05)
        return original(tasks, keys)

    handle.server.batcher._compute_fn = slowed

    responses = []
    shed_latencies = []
    lock = threading.Lock()
    try:
        def fire(limit):
            started = time.perf_counter()
            with ServeClient(handle.host, handle.port) as client:
                response = client.query("sendmail", limit=limit)
            elapsed = time.perf_counter() - started
            with lock:
                responses.append(response)
                if response["status"] == "overloaded":
                    shed_latencies.append(elapsed)

        threads = []
        for wave in range(3):  # 3 waves x 10 clients, distinct limits
            wave_threads = [
                threading.Thread(target=fire, args=(1 + wave * 10 + i,))
                for i in range(10)
            ]
            threads.extend(wave_threads)
            for t in wave_threads:
                t.start()
        for t in threads:
            t.join()
    finally:
        handle.shutdown()

    statuses = [r["status"] for r in responses]
    return {
        "requests": len(responses),
        "queue_depth": 2,
        "ok": statuses.count("ok"),
        "overloaded": statuses.count("overloaded"),
        "unexpected": sorted(set(statuses) - {"ok", "overloaded"}),
        "all_answered": len(responses) == 30,
        "shed_latency_ms": {
            "p95": round((_percentile(shed_latencies, 95) or 0) * 1000, 3),
        },
    }


TRACE_REPEATS = 3
TRACE_COMPUTE_REQUESTS = 24
TRACE_CACHED_REQUESTS = 240


def _compute_workload():
    """Distinct (model, limit) pairs: every request misses every cache
    tier and does real engine work — the workload the overhead gate is
    judged on (a request that is pure socket echo would hold any
    tracing system to single-microsecond budgets)."""
    models = ["sendmail", "nullhttpd", "iis", "xterm"]
    return [(models[i % len(models)], 3 + i)
            for i in range(TRACE_COMPUTE_REQUESTS)]


def _timed_compute_run(traced):
    """One fresh server, one cold pass over the compute workload.

    A fresh server per measurement keeps repeats identical: replaying
    the same pairs against a warm server would time the cache, not the
    engine.  The process-wide result tiers are cleared too — the dist
    fingerprint memo, predicate-verdict cache, and planner state all
    outlive a server, so without this only the first server in the
    process ever computes (later ones answer from the warm tier and
    skip the batch window entirely)."""
    from repro.core import dist, plan
    from repro.core.sweep import shared_cache

    dist.reset()
    shared_cache().clear()
    plan.reset()
    config = ServeConfig(port=0, trace=True) if traced else \
        ServeConfig(port=0)
    handle = ServerThread(config).start()
    try:
        with ServeClient(handle.host, handle.port) as client:
            client.query("sendmail", limit=1)  # absorb first-request setup
            started = time.perf_counter()
            for model, limit in _compute_workload():
                response = client.query(model, limit=limit, trace=traced)
                if response["status"] != "ok":
                    raise RuntimeError(f"trace bench: {response}")
            elapsed = time.perf_counter() - started
        stats = (dict(handle.server.tracer.stats())
                 if handle.server.tracer is not None else {})
    finally:
        handle.shutdown()
    return elapsed, stats


def _timed_cached_replay(handle, trace=False):
    """Warm sequential replay: every request answered from cache."""
    with ServeClient(handle.host, handle.port) as client:
        client.query("sendmail", limit=5)  # warm the caches
        started = time.perf_counter()
        for i in range(TRACE_CACHED_REQUESTS):
            model, limit = MIX[i % len(MIX)]
            response = client.query(model, limit=limit, trace=trace)
            if response["status"] != "ok":
                raise RuntimeError(f"trace bench: {response}")
        return time.perf_counter() - started


def bench_trace_overhead():
    """Scenario D: tracing overhead.

    Gate: best-of-repeats cold compute runs, traced vs untraced, must
    stay under 5% overhead; an untraced re-run gives the measurement
    noise floor (the disabled path is the seed code plus a branch).
    The cached-path (pure request/response echo) delta is reported for
    transparency but not gated — there tracing cost is a fixed ~tens
    of microseconds against a ~hundred-microsecond baseline.
    """
    compute = {}
    traced_stats = {}
    for label in ("off", "off_repeat", "traced"):
        best = None
        for _ in range(TRACE_REPEATS):
            elapsed, stats = _timed_compute_run(traced=(label == "traced"))
            best = elapsed if best is None else min(best, elapsed)
            if label == "traced":
                traced_stats = stats
        compute[label] = best

    cached = {}
    for label in ("off", "traced"):
        traced = label == "traced"
        config = ServeConfig(port=0, trace=True) if traced else \
            ServeConfig(port=0)
        handle = ServerThread(config).start()
        try:
            cached[label] = min(_timed_cached_replay(handle, trace=traced)
                                for _ in range(TRACE_REPEATS))
        finally:
            handle.shutdown()

    off, traced_s = compute["off"], compute["traced"]
    overhead_pct = (traced_s - off) / off * 100.0
    noise_pct = (compute["off_repeat"] - off) / off * 100.0
    cached_us = (cached["traced"] - cached["off"]) \
        / TRACE_CACHED_REQUESTS * 1e6
    return {
        "compute_requests": TRACE_COMPUTE_REQUESTS,
        "cached_requests": TRACE_CACHED_REQUESTS,
        "repeats": TRACE_REPEATS,
        "compute_best_s": {k: round(v, 4) for k, v in compute.items()},
        "trace_overhead_pct": round(overhead_pct, 2),
        "disabled_noise_pct": round(noise_pct, 2),
        "cached_best_s": {k: round(v, 4) for k, v in cached.items()},
        "cached_overhead_us_per_request": round(cached_us, 1),
        "collector": traced_stats,
    }


def bench_drain():
    """Scenario C: SIGTERM a live ``repro serve`` process under load —
    zero dropped responses, clean exit."""
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()

    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", str(port)],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True,
    )
    sent = [0]
    answered = [0]
    statuses = {}
    dropped = [0]
    lock = threading.Lock()
    stop = threading.Event()

    def pound(slot):
        models = list(MODEL_KEYS)
        try:
            with ServeClient("127.0.0.1", port, timeout=30.0) as client:
                i = 0
                while True:
                    model = models[(slot + i) % len(models)]
                    with lock:
                        sent[0] += 1
                    response = client.query(model, limit=4)
                    with lock:
                        answered[0] += 1
                        status = response["status"]
                        statuses[status] = statuses.get(status, 0) + 1
                    if status == "draining":
                        return  # explicit refusal: stop cleanly
                    if stop.is_set() and status != "ok":
                        return
                    i += 1
        except (ConnectionError, OSError):
            with lock:
                dropped[0] += 1

    try:
        if not wait_until_ready("127.0.0.1", port, timeout=30.0):
            process.kill()
            raise RuntimeError("serve subprocess never became ready")
        threads = [threading.Thread(target=pound, args=(slot,))
                   for slot in range(6)]
        for t in threads:
            t.start()
        time.sleep(0.5)  # in-flight load established
        process.send_signal(signal.SIGTERM)
        stop.set()
        for t in threads:
            t.join(30.0)
        exit_code = process.wait(timeout=30.0)
        output = process.stdout.read()
    finally:
        if process.poll() is None:
            process.kill()
            process.wait()

    return {
        "clients": 6,
        "sent": sent[0],
        "answered": answered[0],
        "dropped": dropped[0],
        "statuses": statuses,
        "server_exit": exit_code,
        "drained_cleanly": "drained cleanly" in output,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the results payload to PATH")
    args = parser.parse_args(argv)

    print("scenario A: duplicate-heavy replay, 8 clients ...")
    throughput = bench_throughput()
    print(f"  {throughput['requests']} requests at {throughput['rps']} rps, "
          f"p50 {throughput['latency_ms']['p50']}ms "
          f"p95 {throughput['latency_ms']['p95']}ms, "
          f"coalesce rate {throughput['coalesce_rate']}, "
          f"request cache hit rate {throughput['request_cache_hit_rate']}")

    print("scenario B: overload (queue depth 2, slow engine) ...")
    overload = bench_overload()
    print(f"  {overload['requests']} requests → {overload['ok']} ok, "
          f"{overload['overloaded']} overloaded "
          f"(shed p95 {overload['shed_latency_ms']['p95']}ms)")

    print("scenario D: tracing overhead (off / off / traced) ...")
    trace_overhead = bench_trace_overhead()
    print(f"  {trace_overhead['compute_requests']} cold compute requests "
          f"best-of-{trace_overhead['repeats']}: "
          f"off {trace_overhead['compute_best_s']['off']}s, "
          f"traced {trace_overhead['compute_best_s']['traced']}s "
          f"(overhead {trace_overhead['trace_overhead_pct']}%, "
          f"disabled noise {trace_overhead['disabled_noise_pct']}%); "
          f"cached path +"
          f"{trace_overhead['cached_overhead_us_per_request']}µs/req")

    print("scenario C: SIGTERM drain under load ...")
    drain = bench_drain()
    print(f"  sent {drain['sent']}, answered {drain['answered']}, "
          f"dropped {drain['dropped']}, statuses {drain['statuses']}, "
          f"server exit {drain['server_exit']}")

    checks = {
        "responses_correct": not throughput["errors"],
        "coalesce_rate_positive": throughput["coalesce_rate"] > 0,
        "cache_hit_rate_reported":
            throughput["request_cache_hit_rate"] > 0,
        "overload_sheds_explicitly": overload["overloaded"] > 0,
        "overload_answers_everything": overload["all_answered"]
            and not overload["unexpected"],
        "drain_drops_nothing": drain["dropped"] == 0
            and drain["sent"] == drain["answered"],
        "drain_exits_clean": drain["server_exit"] == 0
            and drain["drained_cleanly"],
        "trace_overhead_under_5pct":
            trace_overhead["trace_overhead_pct"] < 5.0,
        "traces_reassembled": trace_overhead["collector"].get("kept", 0) > 0,
    }
    payload = {
        "benchmark": "serve",
        "throughput": throughput,
        "overload": overload,
        "trace_overhead": trace_overhead,
        "drain": drain,
        "checks": checks,
    }
    if args.json:
        Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.json}")

    failed = sorted(name for name, ok in checks.items() if not ok)
    if failed:
        print(f"FAILED checks: {', '.join(failed)}")
        return 1
    print("all serve checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
