"""Figure 7: IIS decodes filenames superfluously after applying security
checks (#2708, Nimda's vector).

Reproduced shape: "../" rejected, "..%2f" rejected (visible after the
first decode), "..%252f" accepted and executed OUTSIDE /wwwroot/scripts;
checking after the final decode forecloses it.
"""

from conftest import print_table

from repro.apps import IisServer, IisVariant
from repro.models import iis_model

_PROBES = [
    "tools/query.exe",
    "../winnt/system32/cmd.exe",
    "..%2fwinnt/system32/cmd.exe",
    "..%252fwinnt/system32/cmd.exe",
    "..%25252fwinnt/system32/cmd.exe",
]


def test_figure7_decode_check_matrix(benchmark):
    """The acceptance/escape matrix over encodings and variants."""

    def matrix():
        rows = []
        for variant in IisVariant:
            server = IisServer(variant)
            for probe in _PROBES:
                outcome = server.handle_cgi_request(probe)
                rows.append((variant.name, probe, outcome.accepted,
                             outcome.escaped_root))
        return rows

    rows = benchmark(matrix)
    table = {(variant, probe): (accepted, escaped)
             for variant, probe, accepted, escaped in rows}
    # The vulnerable pipeline: only the double encoding escapes.
    assert table[("VULNERABLE", "tools/query.exe")] == (True, False)
    assert table[("VULNERABLE", "../winnt/system32/cmd.exe")][0] is False
    assert table[("VULNERABLE", "..%2fwinnt/system32/cmd.exe")][0] is False
    assert table[("VULNERABLE", "..%252fwinnt/system32/cmd.exe")] == \
        (True, True)
    # The patched pipeline rejects every traversal encoding.
    assert table[("PATCHED", "..%252fwinnt/system32/cmd.exe")][0] is False
    assert table[("PATCHED", "..%25252fwinnt/system32/cmd.exe")][0] is False
    assert table[("PATCHED", "tools/query.exe")] == (True, False)

    print_table(
        "Figure 7 — decode/check matrix (reproduced)",
        (f"{variant:<11} {probe:<40} accepted={str(accepted):<5} "
         f"escaped={escaped}"
         for variant, probe, accepted, escaped in rows),
    )


def test_figure7_model_divergence(benchmark):
    """The hidden path is exactly spec/impl divergence on '..%252f'."""
    model = iis_model.build_model()

    result = benchmark(lambda: model.run(iis_model.exploit_input()))
    assert result.compromised
    assert result.hidden_path_count == 1
    print_table("Figure 7 — exploit trace (reproduced)",
                result.trace.to_text().splitlines())


def test_figure7_nimda_lands_outside_scripts(benchmark):
    """The executed path escapes the scripts root, as the worm used."""
    server = IisServer(IisVariant.VULNERABLE)

    outcome = benchmark(
        lambda: server.handle_cgi_request("..%252fwinnt/system32/cmd.exe")
    )
    assert outcome.executed_path == "/wwwroot/winnt/system32/cmd.exe"
    assert outcome.escaped_root
    print_table(
        "Figure 7 — executable consequence",
        [f"executed: {outcome.executed_path} (outside /wwwroot/scripts)"],
    )
