"""Scale characterization of the analysis machinery.

The paper's future-work tool must sweep real predicate sets over real
input corpora; these benchmarks measure the throughput of the pieces
that dominate such sweeps — pFSM stepping, full-model traversal,
hidden-path search, and database-scale statistics — so regressions in
the core loops are visible.
"""

from conftest import print_table

from repro.bugtraq import BugtraqDatabase, figure1_breakdown
from repro.core import Domain, PrimitiveFSM, in_range, less_equal
from repro.models import sendmail_model


def test_pfsm_step_throughput(benchmark):
    """Raw pFSM stepping over 10k objects."""
    pfsm = PrimitiveFSM("p", "index", "x",
                        spec_accepts=in_range(0, 100),
                        impl_accepts=less_equal(100))
    inputs = list(range(-5000, 5000))

    def sweep():
        return sum(1 for value in inputs if pfsm.step(value).via_hidden_path)

    hidden = benchmark(sweep)
    assert hidden == 5000


def test_model_traversal_throughput(benchmark):
    """Full Figure 3 traversals over a 1k-input corpus."""
    model = sendmail_model.build_model()
    corpus = [
        {"str_x": str(value), "str_i": "1"} for value in range(-500, 500)
    ]

    def sweep():
        return sum(1 for record in corpus if model.is_compromised_by(record))

    compromised = benchmark(sweep)
    assert compromised == 500  # exactly the negative indexes


def test_hidden_witness_search_throughput(benchmark):
    """Hidden-path witness search over a 20k-element domain."""
    pfsm = PrimitiveFSM("p", "index", "x",
                        spec_accepts=in_range(0, 100),
                        impl_accepts=less_equal(100))
    domain = Domain.integers(-10000, 10000)

    def search():
        return len(pfsm.hidden_witnesses(domain, limit=10**9))

    count = benchmark(search)
    assert count == 10000


def test_database_scale_statistics(benchmark):
    """Category statistics over the full 5925-report database (the
    generation itself is benchmarked in bench_figure1)."""
    db = BugtraqDatabase.synthetic()

    def stats():
        rows = figure1_breakdown(db)
        remote = len(db.remote_only())
        by_class = db.class_counts()
        return rows, remote, by_class

    rows, remote, by_class = benchmark(stats)
    assert sum(row.count for row in rows) == 5925
    assert 0 < remote < 5925
    assert by_class["stack buffer overflow"] == 700
    print_table(
        "Scale — database statistics",
        [f"remote-exploitable reports: {remote} "
         f"({remote / 5925:.0%} of the database)"],
    )
