"""Figure 2: the primitive FSM — three states, four transitions, and the
hidden IMPL_ACPT path.

Structural reproduction plus a stepping-throughput benchmark (the pFSM
step is the unit every model traversal is built from).
"""

from conftest import print_table

from repro.core import (
    PrimitiveFSM,
    StateKind,
    TransitionKind,
    in_range,
    less_equal,
    render_pfsm,
)


def _pfsm():
    return PrimitiveFSM(
        "pFSM", "write i to tTvect[x]", "x",
        spec_accepts=in_range(0, 100),
        impl_accepts=less_equal(100),
        accept_action="tTvect[x]=i",
    )


def test_figure2_structure(benchmark):
    """The pFSM shape: states, transitions, hidden-path geometry."""
    pfsm = _pfsm()
    transitions = benchmark(pfsm.transitions_spec)

    assert len(transitions) == 4
    kinds = {t.kind for t in transitions}
    assert kinds == {
        TransitionKind.SPEC_ACPT,
        TransitionKind.SPEC_REJ,
        TransitionKind.IMPL_REJ,
        TransitionKind.IMPL_ACPT,
    }
    assert TransitionKind.IMPL_ACPT.is_hidden
    assert TransitionKind.IMPL_ACPT.source is StateKind.REJECT
    assert TransitionKind.IMPL_ACPT.target is StateKind.ACCEPT
    states = {s for t in transitions for s in (t.kind.source, t.kind.target)}
    assert states == {StateKind.SPEC_CHECK, StateKind.ACCEPT, StateKind.REJECT}

    print_table("Figure 2 — the primitive FSM (reproduced)",
                render_pfsm(pfsm).splitlines())


def test_figure2_step_throughput(benchmark):
    """Throughput of the basic pFSM step over a mixed input sweep."""
    pfsm = _pfsm()
    inputs = list(range(-200, 300))

    def sweep():
        hidden = 0
        for value in inputs:
            if pfsm.step(value).via_hidden_path:
                hidden += 1
        return hidden

    hidden = benchmark(sweep)
    assert hidden == 200  # exactly the negative inputs ride the hidden path
