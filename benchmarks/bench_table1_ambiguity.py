"""Table 1: the same vulnerability type (signed integer overflow) is
assigned three different Bugtraq categories depending on which
elementary activity anchors the classification.

Paper rows: #3163 → Input Validation (get an input integer), #5493 →
Boundary Condition (use the integer as an array index), #3958 → Access
Validation (execute code via a function pointer / return address).
"""

from conftest import print_table

from repro.bugtraq import corpus_report, table1_ambiguity
from repro.core import BugtraqCategory


def test_table1_rows(benchmark):
    """Regenerate Table 1 from the corpus + activity-anchored classifier."""
    rows = benchmark(table1_ambiguity)

    assert [row.bugtraq_id for row in rows] == [3163, 5493, 3958]
    assert [row.anchored_category for row in rows] == [
        BugtraqCategory.INPUT_VALIDATION,
        BugtraqCategory.BOUNDARY_CONDITION,
        BugtraqCategory.ACCESS_VALIDATION,
    ]
    # The anchored classification reproduces the analysts' assignments.
    assert all(row.consistent for row in rows)

    print_table(
        "Table 1 — category ambiguity of signed integer overflows (reproduced)",
        (
            f"#{row.bugtraq_id:<6} anchor: {row.elementary_activity.value:<55} "
            f"-> {row.anchored_category.value}"
            for row in rows
        ),
    )


def test_table1_same_class_three_categories(benchmark):
    """The ambiguity claim: one vulnerability class, three categories."""

    def distinct_categories():
        rows = table1_ambiguity()
        classes = {corpus_report(r.bugtraq_id).vulnerability_class
                   for r in rows}
        categories = {row.assigned_category for row in rows}
        return classes, categories

    classes, categories = benchmark(distinct_categories)
    assert classes == {"signed integer overflow"}  # one class...
    assert len(categories) == 3  # ...three categories


def test_buffer_overflow_and_format_string_chains(benchmark):
    """Observation 1's other two spreads: the buffer-overflow chain
    (#6157/#5960/#4479) and the format-string trio (#1387/#2210/#2264)
    each span three categories."""
    from repro.bugtraq import BUFFER_OVERFLOW_CHAIN, FORMAT_STRING_TRIO

    def spreads():
        overflow = {corpus_report(i).category for i in BUFFER_OVERFLOW_CHAIN}
        fmt = {corpus_report(i).category for i in FORMAT_STRING_TRIO}
        return overflow, fmt

    overflow, fmt = benchmark(spreads)
    assert len(overflow) == 3
    assert len(fmt) == 3
    print_table(
        "Observation 1 — classification spread of the two chains",
        [
            "buffer overflow chain: "
            + ", ".join(sorted(c.value for c in overflow)),
            "format string trio:    "
            + ", ".join(sorted(c.value for c in fmt)),
        ],
    )
