"""Observation 1's format-string trio, executable edition.

The paper's second classification-spread example: format string
vulnerabilities land in Input Validation (#1387 wu-ftpd), Access
Validation (#2210 splitvt), or Boundary Condition (#2264 icecast)
depending on the anchoring activity.  Here all three run as exploits on
their application models, and the *observable consequence* of each
matches its category: the input's %n rewrite (input validation), a
write to a pointer outside the user's domain (access validation), and
directive expansion past a fixed buffer (boundary condition).
"""

from conftest import print_table

from repro.apps import (
    Icecast,
    IcecastVariant,
    Splitvt,
    SplitvtVariant,
    WuFtpd,
    WuFtpdVariant,
    craft_expansion_smash,
    craft_handler_overwrite,
    craft_site_exec_exploit,
)


def test_format_trio_all_exploit(benchmark):
    """All three trio members execute end to end."""

    def run_all():
        ftpd = WuFtpd(WuFtpdVariant.VULNERABLE)
        wuftpd_hit = ftpd.handle_command(
            craft_site_exec_exploit(ftpd)).hijacked

        svt = Splitvt(SplitvtVariant.VULNERABLE)
        svt.set_title(craft_handler_overwrite(svt))
        splitvt_hit = svt.refresh(0).hijacked

        ice = Icecast(IcecastVariant.VULNERABLE)
        icecast_result = ice.print_client(craft_expansion_smash(ice))
        return {
            "#1387 wu-ftpd (Input Validation)": wuftpd_hit,
            "#2210 splitvt (Access Validation)": splitvt_hit,
            "#2264 icecast (Boundary Condition)": icecast_result.hijacked,
        }, icecast_result.formatted_length

    results, expansion = benchmark(run_all)
    assert all(results.values()), results
    assert expansion > 256  # icecast's boundary violation via expansion
    print_table(
        "Format-string trio — executable exploits (reproduced)",
        (f"{row:<40} exploited={'YES' if hit else 'no'}"
         for row, hit in results.items()),
    )


def test_format_trio_distinct_consequences(benchmark):
    """One mechanism, three consequence signatures."""

    def signatures():
        ftpd = WuFtpd(WuFtpdVariant.VULNERABLE)
        ftpd_reply = ftpd.handle_command(craft_site_exec_exploit(ftpd))

        svt = Splitvt(SplitvtVariant.VULNERABLE)
        svt.set_title(craft_handler_overwrite(svt))

        ice = Icecast(IcecastVariant.VULNERABLE)
        ice_payload = craft_expansion_smash(ice)
        ice_result = ice.print_client(ice_payload)
        return {
            "return address rewritten": ftpd_reply.hijacked,
            "function pointer outside user domain rewritten":
                not svt.handler_consistent(0),
            "tiny input expands past the buffer":
                len(ice_payload) < 32 and ice_result.formatted_length > 256,
        }

    signatures = benchmark(signatures)
    assert all(signatures.values())
    print_table(
        "Format-string trio — three distinct consequences",
        (f"{name:<50} {'YES' if hit else 'no'}"
         for name, hit in signatures.items()),
    )


def test_format_trio_fixes(benchmark):
    """Each member's fix forecloses its exploit."""

    def fixes():
        ftpd = WuFtpd(WuFtpdVariant.PATCHED)
        svt = Splitvt(SplitvtVariant.GUARDED)
        ice = Icecast(IcecastVariant.PATCHED)
        svt.set_title(craft_handler_overwrite(svt))
        return (
            not ftpd.handle_command(craft_site_exec_exploit(ftpd)).hijacked,
            not svt.refresh(0).dispatched,
            not ice.print_client(craft_expansion_smash(ice)).hijacked,
        )

    results = benchmark(fixes)
    assert all(results)
