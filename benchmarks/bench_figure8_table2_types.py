"""Figure 8 + Table 2: three generic pFSM types suffice to model every
studied vulnerability; the per-vulnerability type grid matches the
paper's Table 2 exactly.

Also reproduces Section 6's closing observation: the most common cause
among the studied vulnerabilities is an incomplete Content/Attribute
check, with Reference Consistency second.
"""

from collections import Counter

from conftest import print_table

from repro.core import PfsmType
from repro.models import TABLE2_EXPECTED, all_paper_models, table2_grid


def test_table2_grid_matches_paper(benchmark):
    """Derive the grid from the models' annotations and compare."""
    models = all_paper_models()

    grid = benchmark(lambda: table2_grid(models))

    derived = {}
    for cell in grid:
        derived.setdefault(cell.vulnerability, {})[cell.pfsm_name] = \
            cell.check_type
    assert derived == TABLE2_EXPECTED

    print_table(
        "Table 2 — pFSM type grid (reproduced)",
        (f"{cell.vulnerability:<42} {cell.pfsm_name:<6} "
         f"{cell.check_type.value:<30} {cell.question[:50]}"
         for cell in grid),
    )


def test_three_types_cover_all_studied_pfsms(benchmark):
    """Section 6: only three pFSM types are needed for the full range of
    studied vulnerability classes."""
    models = all_paper_models()

    def type_census():
        grid = table2_grid(models)
        typed = [cell for cell in grid if cell.check_type is not None]
        return grid, typed, Counter(cell.check_type for cell in typed)

    grid, typed, counts = benchmark(type_census)
    assert len(typed) == len(grid)  # every pFSM classified
    assert set(counts) <= set(PfsmType)  # no fourth type needed
    assert set(counts) == set(PfsmType)  # and all three are used


def test_content_attribute_dominates(benchmark):
    """Section 6: incomplete content/attribute checks are the most
    common cause; reference-consistency incompleteness is second."""
    models = all_paper_models()

    counts = benchmark(
        lambda: Counter(cell.check_type for cell in table2_grid(models))
    )
    ordered = [check_type for check_type, _n in counts.most_common()]
    assert ordered[0] is PfsmType.CONTENT_ATTRIBUTE
    assert ordered[1] is PfsmType.REFERENCE_CONSISTENCY
    assert ordered[2] is PfsmType.OBJECT_TYPE
    print_table(
        "Section 6 — pFSM type frequency (reproduced)",
        (f"{check_type.value:<32} {count}"
         for check_type, count in counts.most_common()),
    )
