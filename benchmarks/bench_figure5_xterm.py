"""Figure 5: the xterm log-file race condition — interleaving
enumeration over the simulated filesystem.

Reproduced shape: the vulnerable logger admits exactly the interleavings
where Tom's symlink swap lands between the permission check and the
privileged open; both fixes (no-follow open, re-check binding) close the
window; pFSM1 itself is secure (the paper: "there is no hidden path in
pFSM1").
"""

from conftest import print_table

from repro.apps import XtermVariant, build_race_scheduler
from repro.core import hidden_path_report
from repro.models import xterm_model


def test_figure5_race_window_enumeration(benchmark):
    """Enumerate all victim×attacker interleavings on the vulnerable
    logger and locate the window."""
    scheduler = build_race_scheduler(XtermVariant.VULNERABLE)

    analysis = benchmark(scheduler.explore)

    assert analysis.total == 10  # C(5,3): 3 victim steps × 2 attacker steps
    assert len(analysis.violations) == 1
    violation = analysis.violations[0]
    assert violation.happened_between("tom:symlink", "xterm:check",
                                      "xterm:open")
    print_table(
        "Figure 5 — race window (reproduced)",
        [f"interleavings: {analysis.total}, violating: "
         f"{len(analysis.violations)} ({analysis.violation_ratio:.0%})",
         f"violating order: {' -> '.join(violation.order)}"],
    )


def test_figure5_fixes_close_the_window(benchmark):
    """Both reference-consistency fixes eliminate every violating
    interleaving."""

    def explore_fixes():
        return {
            variant.name: build_race_scheduler(variant).explore().has_race
            for variant in XtermVariant
        }

    results = benchmark(explore_fixes)
    assert results == {
        "VULNERABLE": True,
        "PATCHED_NOFOLLOW": False,
        "PATCHED_RECHECK": False,
    }
    print_table(
        "Figure 5 — fix matrix",
        (f"{name:<18} race={'YES' if race else 'no'}"
         for name, race in results.items()),
    )


def test_figure5_pfsm1_is_secure(benchmark):
    """The model agrees with the paper's note: only pFSM2 hides a path."""
    model = xterm_model.build_model()

    findings = benchmark(
        lambda: hidden_path_report(model, xterm_model.pfsm_domains())
    )
    assert {f.pfsm_name for f in findings} == {"pFSM2"}
    print_table(
        "Figure 5 — hidden-path report",
        [str(f) for f in findings],
    )
