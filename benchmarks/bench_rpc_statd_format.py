"""rpc.statd #1480 ([21], Table 2): format-string execution through the
printf interpreter, and the content-check / %s-fix matrix."""

from conftest import print_table

from repro.apps import RpcStatd, StatdVariant, craft_format_exploit
from repro.models import rpc_statd_model


def test_statd_executable_format_write(benchmark):
    """The %n payload rewrites the return address and hijacks control."""

    def exploit():
        app = RpcStatd(StatdVariant.VULNERABLE)
        return app, app.notify(craft_format_exploit(app))

    app, result = benchmark(exploit)
    assert result.wrote_memory
    assert result.hijacked
    assert app.process.is_mcode(result.returned_to)
    print_table(
        "rpc.statd #1480 — executable consequence",
        [f"%n rewrote the return address; control at {result.returned_to:#x}"],
    )


def test_statd_fix_matrix(benchmark):
    """Who wins per variant: raw format argument falls; '%s' and the
    directive filter both foil."""

    def matrix():
        outcomes = {}
        for variant in StatdVariant:
            app = RpcStatd(variant)
            result = app.notify(craft_format_exploit(app))
            outcomes[variant.name] = result.hijacked
        return outcomes

    outcomes = benchmark(matrix)
    assert outcomes == {
        "VULNERABLE": True,
        "PATCHED": False,
        "SANITIZED": False,
    }
    print_table(
        "rpc.statd #1480 — fix matrix (reproduced)",
        (f"{name:<12} hijacked={'YES' if hit else 'no'}"
         for name, hit in outcomes.items()),
    )


def test_statd_leak_without_write_not_a_hijack(benchmark):
    """%x-only payloads leak stack words but do not redirect control —
    the model's distinction between the two pFSMs."""

    def leak():
        app = RpcStatd(StatdVariant.VULNERABLE)
        return app.notify(b"%x.%x.%x.%x")

    result = benchmark(leak)
    assert result.accepted
    assert not result.hijacked
    assert not result.wrote_memory
    assert b"." in result.output


def test_statd_model_agreement(benchmark):
    """The two-pFSM model reproduces the executable outcome."""
    model = rpc_statd_model.build_model()

    result = benchmark(lambda: model.run(rpc_statd_model.exploit_input()))
    assert result.compromised
    assert result.hidden_path_count == 2
    print_table("rpc.statd #1480 — exploit trace (reproduced)",
                result.trace.to_text().splitlines())
