"""Extension experiment: detection coverage of the reference-consistency
checks under fault injection.

Quantifies the paper's Section 6 observation about unprotected
reference inconsistencies: each consistency predicate is exercised
against seeded corruption campaigns on exactly the state it guards, and
the canary's known blind spot (targeted, non-linear writes — the
format-string case) is measured next to the full consistency check.
"""

from conftest import print_table

from repro.memory import (
    AddressSpace,
    CallStack,
    Heap,
    Process,
    Region,
    WORD_SIZE,
    measure_detection_coverage,
)

TRIALS = 60


def _got_target():
    process = Process()
    symbols = list(process.got.symbols())
    span = Region("got-loaded", process.got.entry_address(symbols[0]),
                  len(symbols) * WORD_SIZE)
    return (process.space, span,
            lambda: all(process.got.is_consistent(s) for s in symbols))


def _heap_target():
    space = AddressSpace(size=1 << 20)
    heap = Heap(space, size=64 * 1024)
    first = heap.malloc(64)
    heap.malloc(16)
    heap.free(first)
    chunk = heap.chunk_for(first)
    span = Region("links", chunk.fd_address, 2 * WORD_SIZE)
    return (space, span, heap.links_intact)


def _return_target(predicate):
    space = AddressSpace(size=1 << 20)
    stack = CallStack(space, size=8192)
    frame = stack.push_frame("f", 0x1000, {"buf": 32}, canary=0xCAFE)
    span = Region("ret", frame.return_address_slot, WORD_SIZE)
    check = stack.canary_intact if predicate == "canary" \
        else stack.return_address_intact
    return (space, span, check)


def _buffer_overrun_target(predicate):
    """Linear overruns from the buffer upward: what canaries DO catch."""
    space = AddressSpace(size=1 << 20)
    stack = CallStack(space, size=8192)
    frame = stack.push_frame("f", 0x1000, {"buf": 32}, canary=0xCAFE)
    # Corrupt the canary word itself, as a linear overflow must.
    span = Region("canary", frame.canary_slot, WORD_SIZE)
    check = stack.canary_intact if predicate == "canary" \
        else stack.return_address_intact
    return (space, span, check)


def test_fault_coverage_matrix(benchmark):
    """The full campaign: four guarded states x their predicates."""

    def campaign():
        return [
            measure_detection_coverage(
                "GOT entries vs GOT consistency check",
                _got_target, trials=TRIALS, seed=11),
            measure_detection_coverage(
                "heap free-chunk links vs safe-unlink predicate",
                _heap_target, trials=TRIALS, seed=12),
            measure_detection_coverage(
                "return slot (targeted write) vs canary",
                lambda: _return_target("canary"), trials=TRIALS, seed=13),
            measure_detection_coverage(
                "return slot (targeted write) vs consistency check",
                lambda: _return_target("check"), trials=TRIALS, seed=14),
            measure_detection_coverage(
                "canary word (linear overrun) vs canary",
                lambda: _buffer_overrun_target("canary"),
                trials=TRIALS, seed=15),
        ]

    reports = benchmark(campaign)
    by_name = {report.campaign: report for report in reports}
    assert by_name[
        "GOT entries vs GOT consistency check"].coverage == 1.0
    # Safe-unlink admits a rare aliasing false negative (a corrupted fd
    # pointing just below the bin makes fd->bk alias the bin's head
    # pointer), so its coverage is near-perfect rather than exact.
    assert by_name[
        "heap free-chunk links vs safe-unlink predicate"].coverage >= 0.95
    assert by_name[
        "return slot (targeted write) vs canary"].coverage == 0.0
    assert by_name[
        "return slot (targeted write) vs consistency check"].coverage == 1.0
    assert by_name[
        "canary word (linear overrun) vs canary"].coverage == 1.0
    print_table(
        "Detection coverage under fault injection (reproduced shape: "
        "consistency checks 100%, canary blind to targeted writes)",
        (str(report) for report in reports),
    )
