"""Figure 4: the NULL HTTPD heap overflow — model and executable
exploit, including the heap-layout mechanics (free chunk B, unlink).

Reproduced shape: contentLen = -800 yields a 224-byte PostData; the
copy overruns into chunk B's fd/bk; free(PostData) executes
B->fd->bk = B->bk, rewriting addr_free to Mcode; the next free() call
executes Mcode.  Version 0.5.1 blocks the negative contentLen but not
the over-long body (see bench_discovery_6255).
"""

from conftest import print_table

from repro.apps import NullHttpd, NullHttpdVariant, craft_unlink_body
from repro.memory import ControlFlowHijack
from repro.models import nullhttpd_model


def test_figure4_model_traversal(benchmark):
    """Traverse the three-operation cascade with the #5774 input."""
    model = nullhttpd_model.build_model(NullHttpdVariant.V0_5)
    exploit = nullhttpd_model.exploit_input_5774()

    result = benchmark(lambda: model.run(exploit))
    assert result.compromised
    assert result.hidden_path_count == 4
    assert result.trace.operations_completed() == [
        nullhttpd_model.OPERATION_1,
        nullhttpd_model.OPERATION_2,
        nullhttpd_model.OPERATION_3,
    ]
    print_table("Figure 4 — exploit trace (reproduced)",
                result.trace.to_text().splitlines())


def test_figure4_buffer_arithmetic(benchmark):
    """contentLen = -800 shrinks PostData to 224 bytes while >= 1024
    bytes arrive (the paper's numbers)."""

    def serve():
        app = NullHttpd(NullHttpdVariant.V0_5)
        return app.handle_post(-800, b"A" * 1024)

    outcome = benchmark(serve)
    assert outcome.buffer_size == 224
    assert outcome.bytes_copied == 1024
    assert outcome.overflowed
    print_table(
        "Figure 4 — buffer arithmetic",
        [f"calloc(1024 + (-800)) -> {outcome.buffer_size}-byte PostData; "
         f"{outcome.bytes_copied} bytes copied (overflow)"],
    )


def test_figure4_unlink_write_primitive(benchmark):
    """The full executable chain: overflow -> free -> unlink write into
    the GOT -> hijacked free() dispatch."""

    def full_chain():
        app = NullHttpd(NullHttpdVariant.V0_5)
        body = craft_unlink_body(app, content_len=-800)
        outcome = app.handle_post(-800, body)
        assert outcome.overflowed
        links_before_free = app.heap_links_consistent()
        app.free_post_data()
        got_after_free = app.got_free_consistent()
        try:
            app.call_free()
            hijacked = None
        except ControlFlowHijack as hijack:
            hijacked = hijack
        return app, links_before_free, got_after_free, hijacked

    app, links_ok, got_ok, hijack = benchmark(full_chain)
    assert not links_ok  # pFSM3's predicate violated by the overflow
    assert not got_ok  # pFSM4's predicate violated by the unlink write
    assert hijack is not None and app.process.is_mcode(hijack.target)
    print_table(
        "Figure 4 — executable consequence",
        [
            "B->fd/B->bk overwritten by the POST body",
            "free(PostData) executed B->fd->bk = B->bk",
            f"addr_free now points to Mcode at {hijack.target:#x}",
        ],
    )
    # The Figure 4a heap-layout panel, after the free/consolidation.
    print_table("Figure 4a — heap layout (reproduced)",
                app.process.heap.describe_layout().splitlines())


def test_figure4_version_matrix(benchmark):
    """Who wins across versions: 0.5 falls to #5774; 0.5.1 blocks it;
    the && fix blocks both."""

    def matrix():
        results = {}
        for variant in NullHttpdVariant:
            app = NullHttpd(variant)
            body = craft_unlink_body(app, content_len=-800)
            outcome = app.handle_post(-800, body)
            results[variant.name] = outcome.accepted and outcome.overflowed
        return results

    results = benchmark(matrix)
    assert results == {"V0_5": True, "V0_5_1": False, "FIXED": False}
    print_table(
        "Figure 4 — #5774 (contentLen = -800) across versions",
        (f"{name:<8} overflow={'YES' if hit else 'no'}"
         for name, hit in results.items()),
    )


def test_figure4_safe_unlink_foils(benchmark):
    """The pFSM3 check (safe unlink) foils the exploit at free time."""
    from repro.memory import HeapCorruptionDetected

    def hardened_chain():
        app = NullHttpd(NullHttpdVariant.V0_5, check_unlink=True)
        app.handle_post(-800, craft_unlink_body(app, content_len=-800))
        try:
            app.free_post_data()
            return False
        except HeapCorruptionDetected:
            return True

    assert benchmark(hardened_chain)
