#!/usr/bin/env python3
"""The automatic vulnerability analyzer — the paper's future-work tool,
running against three executable applications.

For each target we give the analyzer only:

* a probe per elementary activity ("does the implementation accept
  this object?"), and
* candidate specification predicates from the catalog.

The analyzer derives the implemented predicates empirically, reports
every spec/implementation divergence with witnesses, and emits a
ready-made FSM model plus fix recommendations.

Run:  python examples/auto_analysis.py
"""

from repro.apps import (
    FreebsdKernel,
    FreebsdVariant,
    IisServer,
    IisVariant,
    NullHttpd,
    NullHttpdVariant,
    percent_decode,
)
from repro.core import (
    ActivityAdapter,
    AutoAnalyzer,
    Domain,
    PREDICATE_CATALOG,
    PfsmType,
    Predicate,
)


def analyze_nullhttpd() -> None:
    print("=" * 70)
    print("TARGET 1 — NULL HTTPD 0.5.1 (finds #6255)")
    print("=" * 70)

    def probe_len(content_len):
        app = NullHttpd(NullHttpdVariant.V0_5_1)
        return app.handle_post(content_len,
                               b"x" * max(content_len, 0)).accepted

    def probe_fit(request):
        app = NullHttpd(NullHttpdVariant.V0_5_1)
        outcome = app.handle_post(request["content_len"],
                                  b"x" * request["input_len"])
        return outcome.accepted and \
            outcome.bytes_copied == request["input_len"]

    fits = Predicate(
        lambda r: r["input_len"] <= r["content_len"] + 1024,
        "length(input) <= size(PostData)",
    )
    report = AutoAnalyzer().analyze(
        "ReadPOSTData",
        [
            ActivityAdapter.of(
                "contentLen", "validate the Content-Length header",
                probe_len, Domain.of(-800, -1, 0, 100, 4096),
                [PREDICATE_CATALOG["non-negative"]],
            ),
            ActivityAdapter.of(
                "copy", "terminate the recv loop at the buffer size",
                probe_fit,
                Domain.records(content_len=Domain.of(0, 100, 500),
                               input_len=Domain.of(0, 100, 1024, 1500, 2248)),
                [(fits, PfsmType.CONTENT_ATTRIBUTE)],
            ),
        ],
    )
    print(report.to_text())


def analyze_iis() -> None:
    print("\n" + "=" * 70)
    print("TARGET 2 — IIS CGI filename decoding (finds #2708)")
    print("=" * 70)

    def probe(path):
        return IisServer(IisVariant.VULNERABLE).handle_cgi_request(
            path).accepted

    spec = PREDICATE_CATALOG["decoded-path-inside-root"]
    report = AutoAnalyzer().analyze(
        "Execute CGI filename",
        [
            ActivityAdapter.of(
                "decode-check", "decode and validate the filepath",
                probe,
                Domain.of("tools/query.exe", "../winnt/cmd.exe",
                          "..%2fwinnt/cmd.exe", "..%252fwinnt/cmd.exe"),
                [(spec.instantiate(decoder=percent_decode),
                  spec.check_type)],
            )
        ],
    )
    print(report.to_text())


def analyze_freebsd() -> None:
    print("\n" + "=" * 70)
    print("TARGET 3 — FreeBSD syscall length handling (finds #5493)")
    print("=" * 70)

    def probe(length):
        kernel = FreebsdKernel(FreebsdVariant.VULNERABLE)
        return kernel.copy_request(b"x" * 64, length).accepted

    bound = PREDICATE_CATALOG["int-range"]
    report = AutoAnalyzer().analyze(
        "copyin request",
        [
            ActivityAdapter.of(
                "length", "bound the copy length",
                probe, Domain.of(-(2**31), -1, 0, 32, 64, 65, 4096),
                [(bound.instantiate(low=0, high=64), bound.check_type)],
            )
        ],
    )
    print(report.to_text())
    # The generated model is immediately usable:
    assert report.model.is_compromised_by(-1)
    print("\ngenerated model confirms: length=-1 compromises; "
          f"secured copy foils: "
          f"{not report.model.fully_secured().is_compromised_by(-1)}")


def main() -> None:
    analyze_nullhttpd()
    analyze_iis()
    analyze_freebsd()


if __name__ == "__main__":
    main()
