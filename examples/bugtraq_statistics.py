#!/usr/bin/env python3
"""Regenerate the paper's data-analysis artifacts (Section 3):

* Figure 1 — the category breakdown of the 5925-report database;
* the Section 1 claim that the studied family covers 22%;
* Table 1 — the category-ambiguity demonstration;
* the Observation 1 classification spreads (buffer-overflow chain and
  format-string trio).

Run:  python examples/bugtraq_statistics.py
"""

from repro.bugtraq import (
    BUFFER_OVERFLOW_CHAIN,
    BugtraqDatabase,
    FORMAT_STRING_TRIO,
    corpus_report,
    dominant_categories,
    figure1_breakdown,
    studied_family_share,
    table1_ambiguity,
)


def figure1(db: BugtraqDatabase) -> None:
    print("=" * 70)
    print(f"Figure 1 — breakdown of {len(db)} Bugtraq reports")
    print("=" * 70)
    for row in figure1_breakdown(db):
        print(f"  {row}")
    top = dominant_categories(db)
    print(f"\n  dominant five cover {sum(r.percent for r in top)}% "
          "(the paper: 'the pie-chart is dominated by five categories')")


def studied_share(db: BugtraqDatabase) -> None:
    print("\n" + "=" * 70)
    print("Section 1 — the studied family's share")
    print("=" * 70)
    count, share = studied_family_share(db)
    print(f"  stack/heap/integer overflow + input validation + format "
          f"string: {count} reports = {share:.1%} (paper: 22%)")


def table1() -> None:
    print("\n" + "=" * 70)
    print("Table 1 — one vulnerability type, three categories")
    print("=" * 70)
    for row in table1_ambiguity():
        print(f"  #{row.bugtraq_id}: anchored on "
              f"'{row.elementary_activity.value}'")
        print(f"      -> {row.anchored_category.value} "
              f"(Bugtraq analyst assigned: {row.assigned_category.value})")


def observation1_spreads() -> None:
    print("\n" + "=" * 70)
    print("Observation 1 — classification spread of the two chains")
    print("=" * 70)
    print("  buffer-overflow chain:")
    for bugtraq_id in BUFFER_OVERFLOW_CHAIN:
        report = corpus_report(bugtraq_id)
        print(f"    #{bugtraq_id}: {report.activities[0].description[:50]:<52} "
              f"-> {report.category.value}")
    print("  format-string trio:")
    for bugtraq_id in FORMAT_STRING_TRIO:
        report = corpus_report(bugtraq_id)
        print(f"    #{bugtraq_id}: {report.software:<52} "
              f"-> {report.category.value}")


def main() -> None:
    db = BugtraqDatabase.synthetic()
    figure1(db)
    studied_share(db)
    table1()
    observation1_spreads()


if __name__ == "__main__":
    main()
