#!/usr/bin/env python3
"""Quickstart: build a pFSM model from scratch, find its hidden path,
foil the exploit, and render the machine.

This walks the paper's core loop on the Observation 3 example (the
Sendmail index check) in ~60 lines:

1. write the *specification* predicate and the (buggy) *implementation*
   predicate;
2. wrap them in a primitive FSM and chain pFSMs into an operation and a
   model;
3. search a domain for hidden-path witnesses (the vulnerability);
4. secure one elementary activity and watch the exploit get foiled.

Run:  python examples/quickstart.py
"""

from repro.core import (
    Domain,
    ModelBuilder,
    PfsmType,
    Predicate,
    in_range,
    less_equal,
    minimal_foil_points,
    render_model,
)
from repro.memory import atoi


def main() -> None:
    # 1. The predicates.  The spec wants a two-sided bound; the 2003
    #    implementation checked only the upper side.
    spec = in_range(0, 100)
    impl = less_equal(100)

    # 2. The model: convert the input string, then index the array.
    model = (
        ModelBuilder("quickstart: signed index check",
                     final_consequence="array underwrite reaches the GOT")
        .operation("write tTvect[x]", obj="the input integer")
        .pfsm("convert",
              activity="parse the decimal string with C atoi",
              object_name="str_x",
              spec=Predicate(lambda s: abs(int(s)) < 2**31,
                             "string represents a 32-bit integer"),
              impl=None,  # no check at all
              transform=lambda s: atoi(s).value,
              check_type=PfsmType.OBJECT_TYPE)
        .pfsm("bound",
              activity="use the integer as an array index",
              object_name="x",
              spec=spec,
              impl=impl,
              action="tTvect[x] = i",
              check_type=PfsmType.CONTENT_ATTRIBUTE)
        .build()
    )
    print(render_model(model))

    # 3. Hidden-path search over boundary-flavoured inputs.
    domain = Domain.integer_strings()
    operation = model.operations[0]
    witnesses = operation.exploit_witnesses(domain, limit=5)
    print(f"\nhidden-path witnesses: {witnesses}")

    # Each witness drives a real exploit traversal:
    trace = model.run(witnesses[0]).trace
    print(f"\n{trace.to_text()}")

    # 4. Observation 1: securing a single elementary activity foils it.
    for point in minimal_foil_points(model, witnesses[0]):
        print(f"foil option: {point}")
    fixed = model.with_pfsm_secured("write tTvect[x]", "bound")
    assert not fixed.is_compromised_by(witnesses[0])
    print("\nafter securing 'bound': exploit foiled; "
          f"benign input still served: {fixed.run('7').compromised}")


if __name__ == "__main__":
    main()
