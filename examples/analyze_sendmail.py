#!/usr/bin/env python3
"""Full Figure 3 walkthrough: the Sendmail Debugging Function Signed
Integer Overflow (#3163), from model to executable exploit to fix.

Three acts:

1. **Model** — the two-operation, three-pFSM cascade, rendered the way
   the paper draws it, with the hidden paths found by domain search.
2. **Execution** — the real exploit on the simulated process: four
   negative-index byte writes rewrite the GOT entry of setuid(); the
   next setuid() call lands in Mcode.
3. **Fix** — the Observation 3 predicate (0 <= x <= 100) installed at
   the vulnerable elementary activity; the same flags bounce.

Run:  python examples/analyze_sendmail.py
"""

from repro.apps import Sendmail, SendmailVariant, craft_got_exploit
from repro.core import hidden_path_report, minimal_foil_points, render_model
from repro.memory import ControlFlowHijack
from repro.models import sendmail_model


def act_one_model() -> None:
    print("=" * 70)
    print("ACT 1 — the Figure 3 model")
    print("=" * 70)
    model = sendmail_model.build_model()
    print(render_model(model))

    print("\nhidden-path report (domain search):")
    for finding in hidden_path_report(model, sendmail_model.pfsm_domains()):
        print(f"  {finding}")

    exploit = sendmail_model.wrapping_exploit_input()
    result = model.run(exploit)
    print(f"\nexploit input {exploit} -> compromised={result.compromised}, "
          f"hidden transitions={result.hidden_path_count}")
    for point in minimal_foil_points(model, exploit):
        print(f"  foil option: {point}")


def act_two_execution() -> None:
    print("\n" + "=" * 70)
    print("ACT 2 — the executable exploit")
    print("=" * 70)
    app = Sendmail(SendmailVariant.VULNERABLE)
    flags = craft_got_exploit(app)
    print(f"attacker's debug flags (negative indexes into tTvect): {flags}")

    for flag in flags:
        result = app.tTflag(flag)
        print(f"  tTflag({flag!r}) accepted={result.accepted} "
              f"wrote byte at {result.wrote_address:#x}")

    print(f"GOT entry of setuid consistent? {app.got_setuid_consistent()}")
    try:
        app.call_setuid()
    except ControlFlowHijack as hijack:
        print(f"setuid() dispatched to {hijack.target:#x} — "
              f"Mcode={app.process.is_mcode(hijack.target)}")


def act_three_fix() -> None:
    print("\n" + "=" * 70)
    print("ACT 3 — the derived predicate as the fix")
    print("=" * 70)
    app = Sendmail(SendmailVariant.PATCHED)
    for flag in craft_got_exploit(app):
        result = app.tTflag(flag)
        print(f"  tTflag({flag!r}) accepted={result.accepted}")
    print(f"GOT entry of setuid consistent? {app.got_setuid_consistent()}")
    print(f"legitimate setuid() dispatch: {app.call_setuid():#x}")
    # And legitimate debugging still works:
    app.tTflag("7.42")
    print(f"benign flag served: tTvect[7] == {app.read_ttvect(7)}")


def main() -> None:
    act_one_model()
    act_two_execution()
    act_three_fix()


if __name__ == "__main__":
    main()
