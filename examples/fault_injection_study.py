#!/usr/bin/env python3
"""Fault-injection study: detection coverage of the consistency checks.

Section 6 of the paper notes that return-address protections are widely
recognised while "very few techniques are available to protect other
reference inconsistencies."  This study injects seeded corruptions into
each guarded state and measures what each available check detects —
including the canary's structural blind spot against targeted
(format-string-style) writes.

Run:  python examples/fault_injection_study.py
"""

from repro.memory import (
    AddressSpace,
    CallStack,
    Heap,
    Process,
    Region,
    WORD_SIZE,
    measure_detection_coverage,
)

TRIALS = 120


def got_campaign():
    def target():
        process = Process()
        symbols = list(process.got.symbols())
        span = Region("got", process.got.entry_address(symbols[0]),
                      len(symbols) * WORD_SIZE)
        return (process.space, span,
                lambda: all(process.got.is_consistent(s) for s in symbols))

    return measure_detection_coverage(
        "GOT entries guarded by the consistency check", target,
        trials=TRIALS, seed=101,
    )


def heap_campaign():
    def target():
        space = AddressSpace(size=1 << 20)
        heap = Heap(space, size=64 * 1024)
        first = heap.malloc(64)
        heap.malloc(16)
        heap.free(first)
        chunk = heap.chunk_for(first)
        span = Region("links", chunk.fd_address, 2 * WORD_SIZE)
        return (space, span, heap.links_intact)

    return measure_detection_coverage(
        "free-chunk links guarded by safe-unlink", target,
        trials=TRIALS, seed=102,
    )


def return_campaigns():
    def target(check):
        def build():
            space = AddressSpace(size=1 << 20)
            stack = CallStack(space, size=8192)
            frame = stack.push_frame("f", 0x1000, {"buf": 32},
                                     canary=0xCAFE)
            span = Region("ret", frame.return_address_slot, WORD_SIZE)
            predicate = stack.canary_intact if check == "canary" \
                else stack.return_address_intact
            return (space, span, predicate)

        return build

    canary = measure_detection_coverage(
        "targeted return-slot writes vs StackGuard canary",
        target("canary"), trials=TRIALS, seed=103,
    )
    consistency = measure_detection_coverage(
        "targeted return-slot writes vs return-address check",
        target("check"), trials=TRIALS, seed=104,
    )
    return canary, consistency


def main() -> None:
    print("=" * 74)
    print(f"Fault-injection detection coverage ({TRIALS} trials each)")
    print("=" * 74)
    reports = [got_campaign(), heap_campaign(), *return_campaigns()]
    for report in reports:
        print(f"  {report}")
    print(
        "\nreading: the consistency checks detect (almost) all corruptions "
        "of their guarded state; the canary detects 0% of *targeted* "
        "return-slot writes (the %n case) — it only guards the linear-"
        "overrun path through the canary word itself."
        "\n\nnote the occasional safe-unlink miss: a corrupted fd that "
        "happens to point just below the bin makes fd->bk alias the bin's "
        "own head pointer, which does equal the chunk — an aliasing false "
        "negative the pointer-equality predicate cannot distinguish."
    )


if __name__ == "__main__":
    main()
