#!/usr/bin/env python3
"""Defense evaluation: Observation 1 and the Lemma, quantitatively.

For every paper model, secure each elementary activity in turn and
re-run the exploit; then secure each whole operation (Lemma part 2).
The output is a foil matrix: which single checks stop which exploits,
and confirmation that benign traffic is never affected.

Run:  python examples/defense_evaluation.py
"""

from repro.core import minimal_foil_points
from repro.models import (
    all_benign_inputs,
    all_exploit_inputs,
    all_paper_models,
)


def foil_matrix() -> None:
    models = all_paper_models()
    exploits = all_exploit_inputs()
    benigns = all_benign_inputs()

    print("=" * 74)
    print("Foil matrix: secure ONE elementary activity, re-run the exploit")
    print("=" * 74)
    total_points = 0
    for label in sorted(models):
        model = models[label]
        exploit = exploits[label]
        foils = {p.pfsm_name for p in minimal_foil_points(model, exploit)}
        total_points += len(foils)
        print(f"\n{label}  (pFSMs: {model.pfsm_count})")
        for operation, pfsm in model.all_pfsms():
            hardened = model.with_pfsm_secured(operation.name, pfsm.name)
            stops = pfsm.name in foils
            benign_ok = (hardened.run(benigns[label]).compromised
                         and hardened.run(benigns[label]).hidden_path_count == 0)
            print(f"  secure {pfsm.name:<6} [{pfsm.activity[:44]:<44}] "
                  f"foils={'YES' if stops else 'no '}  "
                  f"benign unaffected={'yes' if benign_ok else 'NO'}")
    print(f"\ntotal independent foiling opportunities: {total_points}")


def lemma_part2() -> None:
    models = all_paper_models()
    exploits = all_exploit_inputs()

    print("\n" + "=" * 74)
    print("Lemma part 2: secure ONE whole operation, re-run the exploit")
    print("=" * 74)
    for label in sorted(models):
        model = models[label]
        exploit = exploits[label]
        original = model.run(exploit)
        print(f"\n{label}")
        for operation in model.operations:
            rode_hidden_here = any(
                outcome.via_hidden_path
                for op_result in original.operation_results
                if op_result.operation_name == operation.name
                for outcome in op_result.outcomes
            )
            hardened = model.with_operation_secured(operation.name)
            foiled = not hardened.is_compromised_by(exploit)
            note = "" if rode_hidden_here else "  (exploit passed it legally)"
            print(f"  secure operation {operation.name[:48]:<50} "
                  f"foils={'YES' if foiled else 'no '}{note}")


def main() -> None:
    foil_matrix()
    lemma_part2()


if __name__ == "__main__":
    main()
