#!/usr/bin/env python3
"""One-shot reproduction verifier.

Runs every headline claim of the reproduction and prints a PASS/FAIL
table — the quick audit a reviewer runs before digging into the full
test and benchmark suites.

Run:  python examples/verify_reproduction.py
Exit code 0 iff every check passes.
"""

import sys
from typing import Callable, List, Tuple

from repro.bugtraq import (
    BugtraqDatabase,
    FIGURE1_PERCENTAGES,
    figure1_breakdown,
    studied_family_share,
    table1_ambiguity,
)
from repro.core import PfsmType, check_lemma_part1, check_lemma_part2
from repro.models import (
    TABLE2_EXPECTED,
    all_exploit_inputs,
    all_extended_benign_inputs,
    all_extended_exploit_inputs,
    all_extended_models,
    all_operation_domains,
    all_paper_models,
    table2_grid,
)


def check_figure1() -> bool:
    db = BugtraqDatabase.synthetic()
    rows = figure1_breakdown(db)
    return {r.category: r.percent for r in rows} == FIGURE1_PERCENTAGES


def check_22_percent() -> bool:
    _count, share = studied_family_share(BugtraqDatabase.synthetic())
    return round(100 * share) == 22


def check_table1() -> bool:
    rows = table1_ambiguity()
    return (all(r.consistent for r in rows)
            and len({r.assigned_category for r in rows}) == 3)


def check_table2() -> bool:
    derived = {}
    for cell in table2_grid(all_paper_models()):
        derived.setdefault(cell.vulnerability, {})[cell.pfsm_name] = \
            cell.check_type
    return derived == TABLE2_EXPECTED


def check_exploits() -> bool:
    models = all_extended_models()
    exploits = all_extended_exploit_inputs()
    benigns = all_extended_benign_inputs()
    for label, model in models.items():
        if not model.is_compromised_by(exploits[label]):
            return False
        if model.is_compromised_by(benigns[label]):
            return False
        if model.fully_secured().is_compromised_by(exploits[label]):
            return False
    return True


def check_lemma() -> bool:
    models = all_paper_models()
    exploits = all_exploit_inputs()
    domains = all_operation_domains()
    for label, model in models.items():
        if not check_lemma_part2(model, exploits[label]):
            return False
        for operation in model.operations:
            if not check_lemma_part1(operation,
                                     domains[label][operation.name]):
                return False
    return True


def check_discovery_6255() -> bool:
    from repro.apps import NullHttpd, NullHttpdVariant, craft_unlink_body
    from repro.memory import ControlFlowHijack

    app = NullHttpd(NullHttpdVariant.V0_5_1)
    if not app.handle_post(-800, b"x" * 240).accepted:  # known bug fixed
        app2 = NullHttpd(NullHttpdVariant.V0_5_1)
        body = craft_unlink_body(app2, content_len=100)
        outcome = app2.handle_post(100, body)  # the discovered bug
        if not outcome.overflowed:
            return False
        app2.free_post_data()
        try:
            app2.call_free()
            return False
        except ControlFlowHijack as hijack:
            return app2.process.is_mcode(hijack.target)
    return False


def check_xterm_race() -> bool:
    from repro.apps import XtermVariant, build_race_scheduler

    vulnerable = build_race_scheduler(XtermVariant.VULNERABLE).explore()
    fixed = build_race_scheduler(XtermVariant.PATCHED_NOFOLLOW).explore()
    return (vulnerable.total == 10 and len(vulnerable.violations) == 1
            and not fixed.has_race)


CHECKS: List[Tuple[str, Callable[[], bool]]] = [
    ("Figure 1: category percentages exact", check_figure1),
    ("§1: studied family = 22%", check_22_percent),
    ("Table 1: activity-anchored ambiguity", check_table1),
    ("Table 2: 16-cell type grid", check_table2),
    ("all 12 exploits run; benign safe; secured foiled", check_exploits),
    ("§6 Lemma parts 1 & 2 over all paper models", check_lemma),
    ("§5.1: #6255 discovered & exploitable on 0.5.1", check_discovery_6255),
    ("Figure 5: exactly the TOCTTOU window races", check_xterm_race),
]


def main() -> int:
    print("=" * 70)
    print("Reproduction verification — Chen et al., DSN 2003")
    print("=" * 70)
    failures = 0
    for name, check in CHECKS:
        try:
            passed = check()
        except Exception as error:  # a crash is a failure with a reason
            passed = False
            name = f"{name} ({type(error).__name__}: {error})"
        marker = "PASS" if passed else "FAIL"
        if not passed:
            failures += 1
        print(f"  [{marker}] {name}")
    print("=" * 70)
    print("all checks passed" if failures == 0
          else f"{failures} check(s) FAILED")
    return 0 if failures == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
