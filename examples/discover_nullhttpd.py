#!/usr/bin/env python3
"""Reproduce the paper's §5.1 discovery of Bugtraq #6255.

The historical workflow, executed live:

1. Model the *known* NULL HTTPD 0.5 heap overflow (#5774) and confirm
   version 0.5.1's fix blocks it.
2. Keep the model's elementary-activity predicates and *probe* the
   0.5.1 implementation against them with the discovery engine.
3. The sweep reports pFSM2 — "length(input) <= size(PostData)" — still
   has no IMPL_REJ: the recv loop's ``||``-for-``&&`` bug.
4. Confirm the finding with a working exploit (valid Content-Length,
   over-long body, GOT(free) hijack), then verify the && fix with the
   same sweep.

Run:  python examples/discover_nullhttpd.py
"""

from repro.apps import (
    NullHttpd,
    NullHttpdVariant,
    RECV_CHUNK,
    craft_unlink_body,
)
from repro.core import DiscoveryEngine, Domain, Predicate
from repro.memory import ControlFlowHijack


def step1_known_vulnerability() -> None:
    print("=" * 70)
    print("STEP 1 — the known vulnerability (#5774) and 0.5.1's fix")
    print("=" * 70)
    for variant in (NullHttpdVariant.V0_5, NullHttpdVariant.V0_5_1):
        app = NullHttpd(variant)
        body = craft_unlink_body(app, content_len=-800)
        outcome = app.handle_post(-800, body)
        status = ("overflow" if outcome.accepted and outcome.overflowed
                  else outcome.reason or "clean")
        print(f"  {variant.name}: contentLen=-800 -> {status}")


def step2_probe_the_fixed_version():
    print("\n" + "=" * 70)
    print("STEP 2 — probe 0.5.1 against the model's predicates")
    print("=" * 70)
    spec_len = Predicate(lambda n: n >= 0, "contentLen >= 0")
    spec_fit = Predicate(
        lambda r: r["input_len"] <= r["content_len"] + 1024,
        "length(input) <= size(PostData)",
    )

    def probe_len(content_len):
        app = NullHttpd(NullHttpdVariant.V0_5_1)
        return app.handle_post(content_len,
                               b"x" * max(content_len, 0)).accepted

    def probe_fit(request):
        app = NullHttpd(NullHttpdVariant.V0_5_1)
        outcome = app.handle_post(request["content_len"],
                                  b"x" * request["input_len"])
        return outcome.accepted and \
            outcome.bytes_copied == request["input_len"]

    engine = DiscoveryEngine(known_vulnerable=["pFSM1"])
    findings = engine.sweep_probed(
        "Read postdata from socket to PostData",
        [("pFSM1", "validate contentLen", spec_len, probe_len),
         ("pFSM2", "terminate the copy at the buffer size", spec_fit,
          probe_fit)],
        {
            "pFSM1": Domain.of(-800, -1, 0, 100, 4096),
            "pFSM2": Domain.records(
                content_len=Domain.of(0, 100, 500),
                input_len=Domain.of(0, 100, 1024, 1500,
                                    2 * RECV_CHUNK + 200),
            ),
        },
    )
    for finding in findings:
        print(f"  {finding}")
    return findings


def step3_confirm_exploitability() -> None:
    print("\n" + "=" * 70)
    print("STEP 3 — confirm with a working exploit (this became #6255)")
    print("=" * 70)
    app = NullHttpd(NullHttpdVariant.V0_5_1)
    body = craft_unlink_body(app, content_len=100)
    outcome = app.handle_post(100, body)
    print(f"  Content-Length=100, body={len(body)} bytes -> "
          f"copied {outcome.bytes_copied} into a "
          f"{outcome.buffer_size}-byte buffer (overflow={outcome.overflowed})")
    app.free_post_data()
    print(f"  GOT entry of free() consistent? {app.got_free_consistent()}")
    try:
        app.call_free()
    except ControlFlowHijack as hijack:
        print(f"  free() dispatched to Mcode at {hijack.target:#x}")


def step4_verify_fix() -> None:
    print("\n" + "=" * 70)
    print("STEP 4 — the && fix, verified by the same exploit")
    print("=" * 70)
    app = NullHttpd(NullHttpdVariant.FIXED)
    body = craft_unlink_body(app, content_len=100)
    outcome = app.handle_post(100, body)
    print(f"  FIXED: copied {outcome.bytes_copied} of {len(body)} bytes "
          f"(overflow={outcome.overflowed})")
    app.free_post_data()
    print(f"  GOT entry of free() consistent? {app.got_free_consistent()}")


def main() -> None:
    step1_known_vulnerability()
    findings = step2_probe_the_fixed_version()
    assert [f.pfsm_name for f in findings] == ["pFSM2"]
    step3_confirm_exploitability()
    step4_verify_fix()


if __name__ == "__main__":
    main()
